"""The vector execution core: cross-warp SoA batch execution.

:class:`VectorWarp` extends :class:`~repro.sim.fast_warp.FastWarp` with
structure-of-arrays register storage: every warp's ``regs_i`` /
``regs_f`` banks are 2-D ``[register, lane]`` views into a per-program
:class:`RegisterSlab` — one 3-D ``[warp_row, register, lane]`` array per
program per GPU.  Because all resident warps of a program share one
backing array, a *group* of warps parked at the same pc can execute a
straight-line instruction run as single NumPy kernels over the whole
group (``slab[rows, reg]`` gathers an operand for every warp in one
call), instead of one closure call per warp per instruction.

The grouping decision itself lives in
:class:`~repro.sim.smx_scheduler.GroupDispatcher`; this module provides
the data-parallel machinery:

* :func:`vector_decode` — a per-program table of
  :class:`VectorRow` metadata saying, for every pc, whether and how the
  instructions from that pc onward can execute as a group (ALU span,
  native global-memory op, or scalar-private control op), built on the
  same decode the fast core uses plus
  :func:`repro.isa.regions.vectorizable_spans`;
* batched instruction kernels mirroring the fast core's closures with
  an extra leading *warp* axis and per-warp stacked ``where=`` masks
  (grouping, unlike superblock fusion, does not require a full mask);
* :func:`execute_alu_batch` / :func:`execute_mem_batch` — run one
  homogeneous group with bit-identical architectural results and
  per-instruction statistics.

Everything here preserves the stat-exactness contract: registers, the
divergence stack and additive counters are warp-private, so batched ALU
execution commutes with any interleaving; memory operations keep their
exact per-warp issue cycles and global time order (see the dispatcher's
bound proof).  The reference and fast cores remain the oracles.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import SEGMENT_WORDS, WARP_SIZE
from ..errors import ExecutionError
from ..isa.instructions import Opcode, Reg
from ..isa.regions import vectorizable_spans
from ..memory.coalescing import coalesce_address_list
from .fast_warp import (
    _CMP_FUNCS,
    _FLT_BIN_UFUNCS,
    _FUSABLE_OPS,
    _INT_BIN_UFUNCS,
    _SFU_OPS,
    _SPECIAL_GETTERS,
    FastWarp,
    _enc_f,
    _enc_i,
    decode_program,
)


# ----------------------------------------------------------------------
# Per-program register slab
# ----------------------------------------------------------------------
class RegisterSlab:
    """SoA register backing store for all resident warps of one program.

    Rows are allocated per warp at construction and freed when the
    warp's block retires.  The arrays are sized for the GPU-wide
    resident-warp maximum up front: growing them later would detach the
    2-D views live warps hold.  Freed rows are zeroed so re-allocation
    matches a fresh warp's zero-initialized registers.
    """

    __slots__ = ("program", "arr_i", "arr_f", "_free")

    def __init__(self, program, rows: int, n_int: int, n_flt: int) -> None:
        self.program = program  # strong ref: the id()-keyed registry must not alias
        self.arr_i = np.zeros((rows, n_int, WARP_SIZE), dtype=np.int64)
        self.arr_f = np.zeros((rows, n_flt, WARP_SIZE), dtype=np.float64)
        self._free: List[int] = list(range(rows - 1, -1, -1))

    def alloc(self) -> int:
        return self._free.pop()

    def free(self, row: int) -> None:
        self.arr_i[row] = 0
        self.arr_f[row] = 0
        self._free.append(row)


# ----------------------------------------------------------------------
# Batched instruction kernels
#
# Each builder mirrors its scalar counterpart in fast_warp exactly, with
# a leading group axis: operands become ``slab[rows, reg]`` gathers of
# shape (g, WARP_SIZE), and the frame mask becomes a stacked (g,
# WARP_SIZE) boolean array (``None`` when every member frame is full).
# Results are computed for all lanes and merged under the mask — the
# same values ``where=`` writes produce, since masked-out lanes hold
# real register contents, not garbage.
# ----------------------------------------------------------------------
def _bwrite(bank, rows, d, result, mask):
    if mask is None:
        bank[rows, d] = result
    else:
        bank[rows, d] = np.where(mask, result, bank[rows, d])


def _bival(si, rows, idx, imm):
    return si[rows, idx] if idx >= 0 else imm


def _bfval(si, sf, rows, kind, idx, imm):
    if kind == 0:
        return sf[rows, idx]
    if kind == 1:
        return si[rows, idx].astype(np.float64)
    return imm


def _bmake_ibin(instr):
    ufunc = _INT_BIN_UFUNCS[instr.op]
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def brun(si, sf, rows, mask, warps):
        _bwrite(si, rows, d, ufunc(_bival(si, rows, ai, av), _bival(si, rows, bi, bv)), mask)

    return brun


def _bmake_idivmod(instr):
    ufunc = np.floor_divide if instr.op == Opcode.IDIV else np.remainder
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def brun(si, sf, rows, mask, warps):
        av_ = _bival(si, rows, ai, av)
        if bi >= 0:
            bv_ = si[rows, bi]
            safe = np.where(bv_ == 0, 1, bv_)
        else:
            safe = 1 if bv == 0 else bv
        _bwrite(si, rows, d, ufunc(av_, safe), mask)

    return brun


def _bmake_iunary(instr):
    ufunc = np.negative if instr.op == Opcode.INEG else np.bitwise_not
    d = instr.dst.idx
    a = _enc_i(instr.a)
    if a is None:
        return None
    ai, av = a

    def brun(si, sf, rows, mask, warps):
        _bwrite(si, rows, d, ufunc(_bival(si, rows, ai, av)), mask)

    return brun


def _bmake_mov(instr):
    d = instr.dst.idx
    if type(instr.a) is Reg:
        ai, av = instr.a.idx, 0
    else:
        ai, av = -1, instr.a.value

    def brun(si, sf, rows, mask, warps):
        src = si[rows, ai] if ai >= 0 else av
        if mask is None:
            si[rows, d] = src
        else:
            si[rows, d] = np.where(mask, np.asarray(src), si[rows, d])

    return brun


def _bmake_fbin(instr):
    ufunc = _FLT_BIN_UFUNCS[instr.op]
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def brun(si, sf, rows, mask, warps):
        _bwrite(
            sf, rows, d,
            ufunc(_bfval(si, sf, rows, ak, ai, av), _bfval(si, sf, rows, bk, bi, bv)),
            mask,
        )

    return brun


def _bmake_fdiv(instr):
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def brun(si, sf, rows, mask, warps):
        av_ = _bfval(si, sf, rows, ak, ai, av)
        bv_ = _bfval(si, sf, rows, bk, bi, bv)
        if isinstance(bv_, np.ndarray):
            safe = np.where(bv_ == 0.0, 1.0, bv_)
        else:
            safe = 1.0 if bv_ == 0.0 else bv_
        _bwrite(sf, rows, d, np.divide(av_, safe), mask)

    return brun


def _bmake_funary(instr):
    op = instr.op
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)

    def brun(si, sf, rows, mask, warps):
        av_ = _bfval(si, sf, rows, ak, ai, av)
        if op == Opcode.FNEG:
            result = np.negative(av_)
        elif op == Opcode.FABS:
            result = np.abs(np.asarray(av_))
        elif op == Opcode.FSQRT:
            result = np.sqrt(np.abs(np.asarray(av_, dtype=np.float64)))
        else:  # FMOV
            result = np.asarray(av_)
        _bwrite(sf, rows, d, result, mask)

    return brun


def _bmake_itof(instr):
    d = instr.dst.idx
    if type(instr.a) is Reg:
        ai, av = instr.a.idx, 0.0
    else:
        ai, av = -1, instr.a.value

    def brun(si, sf, rows, mask, warps):
        src = si[rows, ai] if ai >= 0 else np.asarray(av, dtype=np.float64)
        _bwrite(sf, rows, d, src, mask)

    return brun


def _bmake_ftoi(instr):
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)

    def brun(si, sf, rows, mask, warps):
        src = np.asarray(
            _bfval(si, sf, rows, ak, ai, av), dtype=np.float64
        ).astype(np.int64)
        _bwrite(si, rows, d, src, mask)

    return brun


def _bmake_setp(instr):
    fn = _CMP_FUNCS[instr.cmp]
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def brun(si, sf, rows, mask, warps):
        result = fn(
            np.asarray(_bival(si, rows, ai, av)), np.asarray(_bival(si, rows, bi, bv))
        )
        _bwrite(si, rows, d, result, mask)

    return brun


def _bmake_fsetp(instr):
    fn = _CMP_FUNCS[instr.cmp]
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def brun(si, sf, rows, mask, warps):
        result = fn(
            np.asarray(_bfval(si, sf, rows, ak, ai, av), dtype=np.float64),
            np.asarray(_bfval(si, sf, rows, bk, bi, bv), dtype=np.float64),
        )
        _bwrite(si, rows, d, result, mask)

    return brun


def _bmake_selp(instr):
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    c = _enc_i(instr.c)
    if a is None or b is None or c is None:
        return None
    ai, av = a
    bi, bv = b
    ci, cv = c

    def brun(si, sf, rows, mask, warps):
        cond = (si[rows, ci] != 0) if ci >= 0 else (cv != 0)
        result = np.where(cond, _bival(si, rows, ai, av), _bival(si, rows, bi, bv))
        _bwrite(si, rows, d, result, mask)

    return brun


def _bmake_read_special(instr):
    getter = _SPECIAL_GETTERS.get(instr.special)
    if getter is None:
        return None
    d = instr.dst.idx

    def brun(si, sf, rows, mask, warps):
        first = getter(warps[0])
        if isinstance(first, np.ndarray):
            value = np.stack([getter(w) for w in warps])
        else:
            value = np.array([getter(w) for w in warps], dtype=np.int64)[:, None]
        _bwrite(si, rows, d, value, mask)

    return brun


_BATCH_BUILDERS = {
    Opcode.IADD: _bmake_ibin,
    Opcode.ISUB: _bmake_ibin,
    Opcode.IMUL: _bmake_ibin,
    Opcode.IMIN: _bmake_ibin,
    Opcode.IMAX: _bmake_ibin,
    Opcode.IAND: _bmake_ibin,
    Opcode.IOR: _bmake_ibin,
    Opcode.IXOR: _bmake_ibin,
    Opcode.ISHL: _bmake_ibin,
    Opcode.ISHR: _bmake_ibin,
    Opcode.IDIV: _bmake_idivmod,
    Opcode.IMOD: _bmake_idivmod,
    Opcode.INEG: _bmake_iunary,
    Opcode.INOT: _bmake_iunary,
    Opcode.MOV: _bmake_mov,
    Opcode.FADD: _bmake_fbin,
    Opcode.FSUB: _bmake_fbin,
    Opcode.FMUL: _bmake_fbin,
    Opcode.FMIN: _bmake_fbin,
    Opcode.FMAX: _bmake_fbin,
    Opcode.FDIV: _bmake_fdiv,
    Opcode.FNEG: _bmake_funary,
    Opcode.FSQRT: _bmake_funary,
    Opcode.FABS: _bmake_funary,
    Opcode.FMOV: _bmake_funary,
    Opcode.ITOF: _bmake_itof,
    Opcode.FTOI: _bmake_ftoi,
    Opcode.SETP: _bmake_setp,
    Opcode.FSETP: _bmake_fsetp,
    Opcode.SELP: _bmake_selp,
    Opcode.READ_SPECIAL: _bmake_read_special,
}

#: Memory opcodes whose completion waits on the memory system (the
#: dispatcher's cohort-lag bound uses the L2 hit latency as the lower
#: bound on their re-ready distance); stores complete at the ALU latency.
_MEM_LOAD_OPS = frozenset(
    {
        Opcode.LD,
        Opcode.FLD,
        Opcode.ATOM_ADD,
        Opcode.ATOM_MIN,
        Opcode.ATOM_MAX,
        Opcode.ATOM_OR,
        Opcode.ATOM_EXCH,
        Opcode.ATOM_CAS,
    }
)

#: Scalar-private control opcodes groupable as kind-3 rows.
_CONTROL_OPS = frozenset({Opcode.BRA, Opcode.JOIN, Opcode.NOP})

#: Smallest group size worth the batched-kernel overhead; smaller
#: groups run the per-warp scalar closures (same results, same timing).
_BATCH_MIN = 4


class VectorRow:
    """Group-execution metadata for one pc.

    ``kind`` selects the execution form:

    * 1 — straight-line ALU span of ``length`` fusable native ops
      starting here (``bruns`` are the batched kernels, ``runs`` the
      scalar closures for singleton groups);
    * 2 — one native global-memory op (``runs[0]``; ``mem`` carries
      ``(is_float, dst, base_idx, offset)`` for the batched full-mask
      load path, else ``None``);
    * 3 — one scalar-private control op (BRA/JOIN/NOP).

    ``latsel`` names the smallest latency any member instruction can
    re-ready at ("alu", "sfu", "min" of both, "load" for L2-bounded
    completions, "one" for JOIN/NOP's fixed single cycle); the
    dispatcher requires the per-SMX cohort lag to stay strictly below
    it so deferred-issue arithmetic stays exact.

    ``head`` is the single-op degradation of this row: the row itself
    for single-op rows, a separate length-1 row covering just the first
    instruction for multi-op spans.  The dispatcher falls back to heads
    when a whole span cannot be executed without perturbing the
    reference schedule (mixed pcs on one SMX, span too long for the
    isolation bound) — one issue per warp, exactly what the pop loop
    does when it cannot fuse.
    """

    __slots__ = (
        "kind", "start", "length", "ops", "runs", "bruns",
        "sfu_flags", "n_alu", "n_sfu", "latsel", "mem", "head",
    )

    def __init__(self, kind, start, ops, runs, bruns=(), latsel="alu", mem=None):
        self.kind = kind
        self.start = start
        self.length = len(ops)
        self.ops = ops
        self.runs = runs
        self.bruns = bruns
        self.sfu_flags = tuple(op in _SFU_OPS for op in ops)
        self.n_sfu = sum(self.sfu_flags)
        self.n_alu = self.length - self.n_sfu
        self.latsel = latsel
        self.mem = mem
        self.head = self


def vector_decode(program) -> list:
    """Per-pc :class:`VectorRow` table for ``program`` (cached).

    Built on top of :func:`~repro.sim.fast_warp.decode_program`: a pc is
    ALU-vectorizable exactly when the fast decode produced a native
    warp-private closure for a fusable opcode there.  Unlike superblock
    fusion, spans of length 1 qualify (a group of warps amortizes the
    dispatch even for a single instruction), and a row is emitted for
    *every* offset into a span so warps that single-stepped into the
    middle of one can still group on the remaining suffix.
    """
    cached = getattr(program, "_vector_table", None)
    if cached is not None:
        return cached
    table, _n_int, _n_flt, _regions = decode_program(program)
    instrs = program.instructions
    vt: List[Optional[VectorRow]] = [None] * len(instrs)

    def alu_ok(pc, instr):
        if table[pc][2] != 1 or instr.op not in _FUSABLE_OPS:
            return False
        builder = _BATCH_BUILDERS.get(instr.op)
        return builder is not None and builder(instr) is not None

    for start, length in vectorizable_spans(instrs, alu_ok):
        ops = tuple(table[pc][1] for pc in range(start, start + length))
        runs = tuple(table[pc][0] for pc in range(start, start + length))
        bruns = tuple(
            _BATCH_BUILDERS[instrs[pc].op](instrs[pc])
            for pc in range(start, start + length)
        )
        for k in range(length):
            sub_ops = ops[k:]
            has_sfu = any(op in _SFU_OPS for op in sub_ops)
            has_alu = any(op not in _SFU_OPS for op in sub_ops)
            latsel = "min" if (has_sfu and has_alu) else ("sfu" if has_sfu else "alu")
            row = VectorRow(1, start + k, sub_ops, runs[k:], bruns[k:], latsel)
            if row.length > 1:
                row.head = VectorRow(
                    1,
                    start + k,
                    sub_ops[:1],
                    runs[k : k + 1],
                    bruns[k : k + 1],
                    "sfu" if sub_ops[0] in _SFU_OPS else "alu",
                )
            vt[start + k] = row

    for pc, instr in enumerate(instrs):
        if vt[pc] is not None:
            continue
        run, op, klass, _region = table[pc]
        if klass == 2:
            mem = None
            if op in (Opcode.LD, Opcode.FLD) and type(instr.a) is Reg:
                mem = (op == Opcode.FLD, instr.dst.idx, instr.a.idx, instr.offset)
            latsel = "load" if op in _MEM_LOAD_OPS else "alu"
            vt[pc] = VectorRow(2, pc, (op,), (run,), latsel=latsel, mem=mem)
        elif klass == 1 and op in _CONTROL_OPS:
            latsel = "alu" if op == Opcode.BRA else "one"
            vt[pc] = VectorRow(3, pc, (op,), (run,), latsel=latsel)

    program._vector_table = vt
    return vt


# ----------------------------------------------------------------------
# Group execution
#
# Called by the dispatcher with a homogeneous batch: warps of one
# program, all parked at the row's pc, with per-warp issue cycles
# already proven interference-free.  ``members`` is a list of
# ``(start_cycle, smx_id, warp, frame)``.
# ----------------------------------------------------------------------
def execute_alu_batch(row, members, alu_lat, sfu_lat) -> None:
    """Run one ALU span for every member warp; set pc and ready_cycle."""
    duration = row.n_alu * alu_lat + row.n_sfu * sfu_lat
    end_pc = row.start + row.length
    if len(members) < _BATCH_MIN:
        # Tiny groups: per-warp scalar closures beat the fancy-indexing
        # overhead of the batched kernels.
        for start, _smx_id, warp, frame in members:
            c = start
            for run in row.runs:
                run(warp, frame, c)
                c = warp.ready_cycle
            frame[0] = end_pc
            warp.ready_cycle = start + duration
        return
    warps = [m[2] for m in members]
    slab = warps[0]._slab
    rows_idx = np.fromiter(
        (w._slab_row for w in warps), dtype=np.intp, count=len(warps)
    )
    if all(m[3][4] for m in members):
        mask = None
    else:
        mask = np.stack([m[3][2] for m in members])
    si = slab.arr_i
    sf = slab.arr_f
    for brun in row.bruns:
        brun(si, sf, rows_idx, mask, warps)
    for start, _smx_id, warp, frame in members:
        frame[0] = end_pc
        warp.ready_cycle = start + duration


def execute_mem_batch(row, members, memsys) -> None:
    """Run one native global-memory op for every member warp.

    ``members`` must already be in global time order (ascending start
    cycle, same-cycle members in SMX/pop order): DRAM bank and row
    state and the L2's LRU depend on access order.  Full-mask loads
    take a batched path — one address gather, one grouped timing pass
    (:meth:`MemorySubsystem.warp_access_batch
    <repro.memory.dram.MemorySubsystem.warp_access_batch>`), one data
    gather and one scatter for the whole group; everything else runs
    the scalar closure per warp at its exact issue cycle.
    """
    if (
        row.mem is not None
        and len(members) >= _BATCH_MIN
        and all(m[3][4] for m in members)
    ):
        is_float, d, base_idx, off = row.mem
        warps = [m[2] for m in members]
        w0 = warps[0]
        slab = w0._slab
        rows_idx = np.fromiter(
            (w._slab_row for w in warps), dtype=np.intp, count=len(warps)
        )
        bases = slab.arr_i[rows_idx, base_idx]
        addrs = bases + off if off else bases
        alists = addrs.tolist()
        mem_size = w0._mem_size
        jobs = []
        for (start, _smx_id, warp, _frame), alist in zip(members, alists):
            lo = min(alist)
            hi = max(alist)
            if lo < 0 or hi >= mem_size:
                raise ExecutionError(
                    f"kernel {warp.tb.func.name!r}: global access out of range "
                    f"(addr {lo}..{hi}, mem size {mem_size})"
                )
            if hi - lo < SEGMENT_WORDS:
                s0 = lo // SEGMENT_WORDS
                s1 = hi // SEGMENT_WORDS
                segments = [s0] if s0 == s1 else [s0, s1]
            else:
                segments = coalesce_address_list(alist)
            cstats = warp._cstats
            cstats.warp_accesses += 1
            cstats.transactions += len(segments)
            cstats.lanes += len(alist)
            cstats.histogram[len(segments)] += 1
            jobs.append((segments, start))
        completions = memsys.warp_access_batch(jobs, False)
        mem = w0._mem_f if is_float else w0._mem_i
        bank = slab.arr_f if is_float else slab.arr_i
        bank[rows_idx, d] = mem[addrs]
        end_pc = row.start + 1
        for (start, _smx_id, warp, frame), done in zip(members, completions):
            frame[0] = end_pc
            warp.ready_cycle = done
        return
    for start, _smx_id, warp, frame in members:
        if not row.runs[0](warp, frame, start):
            frame[0] = row.start + 1


def execute_control_batch(row, members) -> None:
    """Run one BRA/JOIN/NOP for every member warp at its issue cycle."""
    run = row.runs[0]
    for start, _smx_id, warp, frame in members:
        if not run(warp, frame, start):
            frame[0] = row.start + 1


class VectorWarp(FastWarp):
    """FastWarp whose registers live in the per-program SoA slab."""

    __slots__ = ("_vtable", "_slab", "_slab_row")

    def _alloc_registers(self, n_int: int, n_flt: int) -> None:
        program = self.tb.func.program
        slab = self._gpu._vector_slab(program, n_int, n_flt)
        row = slab.alloc()
        self._slab = slab
        self._slab_row = row
        self.regs_i = slab.arr_i[row]
        self.regs_f = slab.arr_f[row]
        self._vtable = vector_decode(program)

    def release_slab(self) -> None:
        """Return this warp's slab row (called when its block retires)."""
        self._slab.free(self._slab_row)
