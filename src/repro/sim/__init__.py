"""Cycle-level GPU simulator (GK110/Kepler-like baseline, Section 2)."""

from .kernel import KernelFunction, LaunchDims, dims_total
from .profiler import HotPathProfiler
from .sanitizer import Sanitizer, SanitizerFinding, SanitizerReport
from .stats import LaunchKind, LaunchRecord, SimStats
from .gpu import GPU

__all__ = [
    "GPU",
    "HotPathProfiler",
    "KernelFunction",
    "LaunchDims",
    "LaunchKind",
    "LaunchRecord",
    "Sanitizer",
    "SanitizerFinding",
    "SanitizerReport",
    "SimStats",
    "dims_total",
]
