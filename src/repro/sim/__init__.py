"""Cycle-level GPU simulator (GK110/Kepler-like baseline, Section 2)."""

from .kernel import KernelFunction, LaunchDims, dims_total
from .stats import LaunchKind, LaunchRecord, SimStats
from .gpu import GPU

__all__ = [
    "GPU",
    "KernelFunction",
    "LaunchDims",
    "LaunchKind",
    "LaunchRecord",
    "SimStats",
    "dims_total",
]
