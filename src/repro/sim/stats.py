"""Simulation statistics.

Collects exactly the quantities the paper's evaluation (Section 5.2)
reports:

* **warp activity percentage** (Fig. 6): mean fraction of active lanes per
  issued warp instruction;
* **DRAM efficiency** (Fig. 7): via :class:`~repro.memory.dram.DramStats`;
* **SMX occupancy** (Fig. 8): time-weighted mean resident warps per SMX
  over the maximum (64), in percent;
* **waiting time** (Fig. 9): launch-to-first-execution latency of each
  dynamically launched kernel / aggregated group;
* **memory footprint** (Fig. 10): peak bytes reserved for pending dynamic
  launches (records + parameter buffers);
* **total cycles** (Fig. 11 speedups);
* eligible-kernel match rate for DTBL coalescing (Section 4.2's 98%).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..config import WARP_SIZE, GPUConfig
from ..memory.coalescing import CoalescingStats
from ..memory.dram import DramStats


class LaunchKind(enum.Enum):
    """What kind of dynamic launch a :class:`LaunchRecord` describes."""

    HOST_KERNEL = "host_kernel"
    DEVICE_KERNEL = "device_kernel"
    AGG_GROUP = "agg_group"


@dataclass
class LaunchRecord:
    """Lifecycle of one launch, for waiting-time and footprint metrics."""

    kind: LaunchKind
    kernel_name: str
    launch_cycle: int
    total_blocks: int
    total_threads: int
    param_bytes: int = 0
    record_bytes: int = 0
    first_exec_cycle: Optional[int] = None
    fully_distributed_cycle: Optional[int] = None
    completed_cycle: Optional[int] = None

    @property
    def waiting_cycles(self) -> Optional[int]:
        if self.first_exec_cycle is None:
            return None
        return self.first_exec_cycle - self.launch_cycle

    @property
    def pending_bytes(self) -> int:
        return self.param_bytes + self.record_bytes

    def to_dict(self) -> dict:
        """All fields as a JSON-safe dictionary (exact round trip)."""
        return {
            "kind": self.kind.value,
            "kernel_name": self.kernel_name,
            "launch_cycle": self.launch_cycle,
            "total_blocks": self.total_blocks,
            "total_threads": self.total_threads,
            "param_bytes": self.param_bytes,
            "record_bytes": self.record_bytes,
            "first_exec_cycle": self.first_exec_cycle,
            "fully_distributed_cycle": self.fully_distributed_cycle,
            "completed_cycle": self.completed_cycle,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LaunchRecord":
        return cls(
            kind=LaunchKind(data["kind"]),
            kernel_name=data["kernel_name"],
            launch_cycle=data["launch_cycle"],
            total_blocks=data["total_blocks"],
            total_threads=data["total_threads"],
            param_bytes=data["param_bytes"],
            record_bytes=data["record_bytes"],
            first_exec_cycle=data["first_exec_cycle"],
            fully_distributed_cycle=data["fully_distributed_cycle"],
            completed_cycle=data["completed_cycle"],
        )


class SimStats:
    """Mutable counters for one simulation run."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.cycles = 0
        self.issued_instructions = 0
        self.active_lane_sum = 0
        self.coalescing = CoalescingStats()
        self.dram: DramStats = DramStats()  # replaced by the live object at GPU init
        self.launches: List[LaunchRecord] = []
        # Occupancy: integral of (resident unfinished warps across all SMXs)
        # over cycles.
        self.resident_warp_cycles = 0
        # Footprint accounting for pending dynamic launches.
        self.footprint_bytes = 0
        self.peak_footprint_bytes = 0
        # DTBL coalescing outcome counters.
        self.agg_matched = 0
        self.agg_unmatched = 0
        self.agt_hash_hits = 0
        self.agt_hash_spills = 0
        # Branch behaviour.
        self.branches_uniform = 0
        self.branches_diverged = 0
        # Completed thread blocks / kernels.
        self.blocks_completed = 0
        self.kernels_completed = 0

    # ------------------------------------------------------------------
    # Recording hooks (called from the hot path; keep them tiny)
    # ------------------------------------------------------------------
    def record_issue(self, active_lanes: int) -> None:
        self.issued_instructions += 1
        self.active_lane_sum += active_lanes

    def add_footprint(self, nbytes: int) -> None:
        self.footprint_bytes += nbytes
        if self.footprint_bytes > self.peak_footprint_bytes:
            self.peak_footprint_bytes = self.footprint_bytes

    def release_footprint(self, nbytes: int) -> None:
        self.footprint_bytes -= nbytes

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def warp_activity_pct(self) -> float:
        """Fig. 6 metric: average % of active threads per issued warp instr."""
        if not self.issued_instructions:
            return 0.0
        return 100.0 * self.active_lane_sum / (self.issued_instructions * WARP_SIZE)

    @property
    def dram_efficiency(self) -> float:
        """Fig. 7 metric."""
        return self.dram.efficiency

    @property
    def smx_occupancy_pct(self) -> float:
        """Fig. 8 metric: mean resident warps per SMX / 64, in percent."""
        if not self.cycles:
            return 0.0
        denom = self.cycles * self.config.num_smx * self.config.max_resident_warps
        return 100.0 * self.resident_warp_cycles / denom

    def dynamic_launches(self) -> List[LaunchRecord]:
        return [r for r in self.launches if r.kind is not LaunchKind.HOST_KERNEL]

    @property
    def avg_waiting_cycles(self) -> float:
        """Fig. 9 metric, over dynamic launches that began executing."""
        waits = [
            r.waiting_cycles
            for r in self.dynamic_launches()
            if r.waiting_cycles is not None
        ]
        if not waits:
            return 0.0
        return sum(waits) / len(waits)

    @property
    def branch_divergence_rate(self) -> float:
        """Fraction of executed conditional branches that diverged."""
        total = self.branches_uniform + self.branches_diverged
        return self.branches_diverged / total if total else 0.0

    @property
    def agg_match_rate(self) -> float:
        total = self.agg_matched + self.agg_unmatched
        return self.agg_matched / total if total else 0.0

    @property
    def avg_dynamic_threads(self) -> float:
        """Mean thread count of dynamically launched kernels / groups."""
        dyn = self.dynamic_launches()
        if not dyn:
            return 0.0
        return sum(r.total_threads for r in dyn) / len(dyn)

    def launches_by_kernel(self) -> dict:
        """Launch-record roll-up keyed by kernel name.

        Each value holds counts per launch kind plus total blocks/threads
        and the mean waiting time of that kernel's dynamic launches.
        """
        rollup: dict = {}
        for record in self.launches:
            entry = rollup.setdefault(
                record.kernel_name,
                {
                    "host": 0,
                    "device": 0,
                    "agg": 0,
                    "blocks": 0,
                    "threads": 0,
                    "waits": [],
                },
            )
            key = {
                LaunchKind.HOST_KERNEL: "host",
                LaunchKind.DEVICE_KERNEL: "device",
                LaunchKind.AGG_GROUP: "agg",
            }[record.kind]
            entry[key] += 1
            entry["blocks"] += record.total_blocks
            entry["threads"] += record.total_threads
            if record.kind is not LaunchKind.HOST_KERNEL and record.waiting_cycles is not None:
                entry["waits"].append(record.waiting_cycles)
        for entry in rollup.values():
            waits = entry.pop("waits")
            entry["avg_wait"] = sum(waits) / len(waits) if waits else 0.0
        return rollup

    # ------------------------------------------------------------------
    # Serialization (exact round trip; repro.exec's on-disk cache and the
    # multi-process sweep engine move SimStats across process boundaries)
    # ------------------------------------------------------------------

    #: Plain integer counters copied verbatim by to_dict/from_dict.
    _COUNTER_FIELDS = (
        "cycles",
        "issued_instructions",
        "active_lane_sum",
        "resident_warp_cycles",
        "footprint_bytes",
        "peak_footprint_bytes",
        "agg_matched",
        "agg_unmatched",
        "agt_hash_hits",
        "agt_hash_spills",
        "branches_uniform",
        "branches_diverged",
        "blocks_completed",
        "kernels_completed",
    )

    def to_dict(self) -> dict:
        """Every counter, nested stat and launch record, JSON-safe.

        ``SimStats.from_dict(stats.to_dict())`` reproduces the object
        bit-exactly — including after a ``json.dumps``/``loads`` round
        trip, which is what the on-disk result cache relies on.
        """
        data = {name: getattr(self, name) for name in self._COUNTER_FIELDS}
        data["config"] = self.config.to_dict()
        data["coalescing"] = self.coalescing.to_dict()
        data["dram"] = self.dram.to_dict()
        data["launches"] = [record.to_dict() for record in self.launches]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        stats = cls(GPUConfig.from_dict(data["config"]))
        for name in cls._COUNTER_FIELDS:
            setattr(stats, name, int(data[name]))
        stats.coalescing = CoalescingStats.from_dict(data["coalescing"])
        stats.dram = DramStats.from_dict(data["dram"])
        stats.launches = [
            LaunchRecord.from_dict(record) for record in data["launches"]
        ]
        return stats

    def summary(self) -> dict:
        """Flat dictionary of the headline metrics, for harness reports."""
        return {
            "cycles": self.cycles,
            "instructions": self.issued_instructions,
            "warp_activity_pct": self.warp_activity_pct,
            "dram_efficiency": self.dram_efficiency,
            "smx_occupancy_pct": self.smx_occupancy_pct,
            "avg_waiting_cycles": self.avg_waiting_cycles,
            "peak_footprint_bytes": self.peak_footprint_bytes,
            "dynamic_launches": len(self.dynamic_launches()),
            "avg_dynamic_threads": self.avg_dynamic_threads,
            "agg_match_rate": self.agg_match_rate,
            "branch_divergence_rate": self.branch_divergence_rate,
            "blocks_completed": self.blocks_completed,
            "kernels_completed": self.kernels_completed,
        }
