"""Human-readable snapshots of simulator state, for debugging stuck or
surprising simulations.

``dump_state(gpu)`` renders the Kernel Distributor, the FCFS queue, each
SMX's resources and resident blocks, the AGT occupancy, the KMU queues,
and the headline statistics — the view you want when a simulation
deadlocks or a scheduling decision looks wrong.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU


def dump_state(gpu: "GPU") -> str:
    """Render the full machine state as text."""
    lines: List[str] = [f"=== GPU state @ cycle {gpu.cycle} ==="]

    # Kernel Distributor.
    entries = gpu.distributor.active_entries()
    lines.append(
        f"Kernel Distributor: {gpu.distributor.occupied}/"
        f"{gpu.distributor.num_entries} entries "
        f"(peak {gpu.distributor.peak_occupied})"
    )
    for entry in entries:
        groups = entry.pending_groups()
        lines.append(
            f"  [{entry.index:2d}] {entry.func.name:<18s} "
            f"native {entry.next_block}/{entry.total_blocks} "
            f"exe={entry.exe_blocks} agg_exe={entry.agg_exe_blocks} "
            f"pending_groups={groups} "
            f"{'MARKED' if entry.marked else 'unmarked'}"
        )

    # FCFS queue.
    queue = list(gpu.scheduler.fcfs)
    lines.append(
        "FCFS queue: "
        + (" -> ".join(f"{e.func.name}[{e.index}]" for e in queue) or "(empty)")
    )

    # AGT.
    agt = gpu.scheduler.agt
    lines.append(
        f"AGT: {agt.occupied}/{agt.size} occupied (peak {agt.peak_occupied}); "
        f"hash hits {gpu.stats.agt_hash_hits}, spills {gpu.stats.agt_hash_spills}"
    )

    # KMU.
    lines.append(
        f"KMU: {len(gpu.kmu.device_pending)} device kernels pending, "
        f"{sum(len(h.pending) for h in gpu.kmu.host_queues.hwqs)} host launches queued"
    )

    # SMXs.
    for smx in gpu.smxs:
        if not smx.blocks and smx.free_blocks == gpu.config.max_resident_blocks:
            continue
        lines.append(
            f"SMX {smx.smx_id}: {len(smx.blocks)} blocks, "
            f"{smx.resident_warps} warps resident; free: "
            f"threads={smx.free_threads} regs={smx.free_regs} "
            f"shared={smx.free_shared}B slots={smx.free_warp_slots}"
        )
        for tb in smx.blocks:
            kind = "agg" if tb.age is not None else "native"
            lines.append(
                f"    {tb.func.name} block {tb.block_linear_index} ({kind}), "
                f"{tb.alive_warps}/{len(tb.warps)} warps alive"
            )

    # Stats snapshot.
    lines.append("Stats: " + ", ".join(
        f"{key}={value if not isinstance(value, float) else round(value, 3)}"
        for key, value in gpu.stats.summary().items()
    ))
    return "\n".join(lines)


def dump_warp(warp) -> str:
    """Render one warp's SIMT stack and status."""
    lines = [
        f"warp slot={warp.context_slot} block={warp.tb.block_linear_index} "
        f"kernel={warp.tb.func.name} ready@{warp.ready_cycle} "
        f"{'FINISHED' if warp.finished else ''}{'BARRIER' if warp.at_barrier else ''}"
    ]
    # Frames are [pc, rpc, mask] on the reference core and
    # [pc, rpc, mask, active, full] on the fast core; index positionally.
    for depth, frame in enumerate(warp.stack):
        active = int(frame[2].sum())
        lines.append(f"  frame[{depth}] pc={frame[0]} rpc={frame[1]} active={active}/32")
    return "\n".join(lines)
