"""Machine-state invariant checking.

``check_drained(gpu)`` asserts every conservation property that must hold
once a simulation has drained: all SMX resources returned, no resident
warps, Kernel Distributor and AGT empty, no pending launches, and the
footprint accounting back at zero.  Tests call it after runs so that any
resource leak in the scheduler surfaces as a precise message rather than
as a mysteriously slower follow-up launch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU


def check_drained(gpu: "GPU") -> None:
    """Raise :class:`SimulationError` listing every violated invariant."""
    problems: List[str] = []
    cfg = gpu.config

    for smx in gpu.smxs:
        if smx.blocks:
            problems.append(f"SMX {smx.smx_id}: {len(smx.blocks)} blocks resident")
        if smx.resident_warps:
            problems.append(
                f"SMX {smx.smx_id}: {smx.resident_warps} warps still resident"
            )
        if smx.free_blocks != cfg.max_resident_blocks:
            problems.append(f"SMX {smx.smx_id}: block slots leaked")
        if smx.free_threads != cfg.max_resident_threads:
            problems.append(f"SMX {smx.smx_id}: thread slots leaked")
        if smx.free_regs != cfg.registers_per_smx:
            problems.append(f"SMX {smx.smx_id}: registers leaked")
        if smx.free_shared != cfg.shared_mem_size:
            problems.append(f"SMX {smx.smx_id}: shared memory leaked")
        if smx.free_warp_slots != cfg.max_resident_warps:
            problems.append(f"SMX {smx.smx_id}: warp-context slots leaked")
        if len(set(smx._free_slots)) != len(smx._free_slots):
            problems.append(f"SMX {smx.smx_id}: duplicate free warp slots")

    if gpu.active_warps:
        problems.append(f"{gpu.active_warps} warps counted active after drain")
    if gpu.distributor.occupied:
        problems.append(
            f"Kernel Distributor holds {gpu.distributor.occupied} entries"
        )
    if gpu.scheduler.agt.occupied:
        problems.append(f"AGT holds {gpu.scheduler.agt.occupied} groups")
    if gpu.scheduler.fcfs:
        problems.append(f"FCFS queue holds {len(gpu.scheduler.fcfs)} entries")
    if gpu.kmu.pending_count:
        problems.append(f"KMU holds {gpu.kmu.pending_count} pending launches")
    if gpu.stats.footprint_bytes:
        problems.append(
            f"pending-launch footprint is {gpu.stats.footprint_bytes} B, not 0"
        )

    # Launch-record closure: everything that started must have finished.
    for record in gpu.stats.launches:
        if record.completed_cycle is None:
            problems.append(
                f"launch of {record.kernel_name!r} ({record.kind.value}) "
                "never completed"
            )

    if problems:
        raise SimulationError(
            "machine not cleanly drained:\n  " + "\n  ".join(problems)
        )
