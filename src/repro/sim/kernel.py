"""Kernel functions and launch geometry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..config import WARP_SIZE
from ..errors import LaunchError
from ..isa.program import Program

#: (x, y, z) launch dimensions.
LaunchDims = Tuple[int, int, int]


def as_dims(dims: object) -> LaunchDims:
    """Coerce an int or a 1-3 element sequence to concrete (x, y, z)."""
    if isinstance(dims, int):
        seq = (dims,)
    else:
        seq = tuple(int(d) for d in dims)  # type: ignore[arg-type]
    if not 1 <= len(seq) <= 3:
        raise LaunchError(f"launch dims must have 1-3 components, got {dims!r}")
    padded = seq + (1,) * (3 - len(seq))
    if any(d <= 0 for d in padded):
        raise LaunchError(f"launch dims must be positive, got {dims!r}")
    return padded  # type: ignore[return-value]


def dims_total(dims: LaunchDims) -> int:
    return dims[0] * dims[1] * dims[2]


@dataclass
class KernelFunction:
    """A compiled kernel: program plus static resource demands.

    ``regs_per_thread`` feeds the SMX occupancy limit; it defaults to the
    register count the program actually uses.  ``shared_words`` is the
    static shared-memory allocation of each thread block.
    """

    name: str
    program: Program
    shared_words: int = 0
    regs_per_thread: int = field(default=0)
    #: Per-thread local-memory words (LDL/STL address space).
    local_words: int = 0

    def __post_init__(self) -> None:
        self.program.finalize()
        if self.regs_per_thread <= 0:
            highest = self.program.max_register_index()
            # int64/float64 registers each occupy two 32-bit architectural
            # registers on the modeled hardware.
            self.regs_per_thread = 2 * (highest["int"] + 1 + highest["flt"] + 1)
        if self.shared_words < 0:
            raise LaunchError("shared_words must be non-negative")
        if self.local_words < 0:
            raise LaunchError("local_words must be non-negative")

    def validate_block(self, block_dims: LaunchDims, max_threads: int) -> None:
        threads = dims_total(block_dims)
        if threads <= 0 or threads > max_threads:
            raise LaunchError(
                f"kernel {self.name!r}: block of {threads} threads exceeds the "
                f"{max_threads}-thread limit"
            )

    def warps_per_block(self, block_dims: LaunchDims) -> int:
        threads = dims_total(block_dims)
        return (threads + WARP_SIZE - 1) // WARP_SIZE
