"""Warp state and the SIMT execution engine.

A warp executes one instruction per :meth:`Warp.step` for the lanes in the
active mask of its top PDOM stack frame.  Functional execution is
vectorized over the 32 lanes with NumPy; timing effects are expressed by
setting ``ready_cycle`` (in-order, dependent-issue model) or by blocking on
memory / barrier / launch events.

Control divergence follows the classic PDOM reconvergence stack
[Fung et al., MICRO'07], which the paper's baseline uses (Section 2.2):
on a divergent branch the current frame is rewritten to wait at the
branch's immediate post-dominator, and one frame per path is pushed; a
frame is popped when its pc reaches its reconvergence pc.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List

import numpy as np

from ..config import WARP_SIZE
from ..errors import ExecutionError
from ..isa.instructions import Bank, Cmp, Opcode, Reg, Special
from ..memory.coalescing import coalesce_addresses

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .thread_block import ThreadBlock

_CMP_FUNCS: Dict[Cmp, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    Cmp.LT: np.less,
    Cmp.LE: np.less_equal,
    Cmp.GT: np.greater,
    Cmp.GE: np.greater_equal,
    Cmp.EQ: np.equal,
    Cmp.NE: np.not_equal,
}


class Warp:
    """One warp: 32 lanes of architectural state plus scheduling status."""

    __slots__ = (
        "tb",
        "warp_index",
        "context_slot",
        "hw_slot_base",
        "age",
        "regs_i",
        "regs_f",
        "stack",
        "ready_cycle",
        "finished",
        "at_barrier",
        "tid_x",
        "tid_y",
        "tid_z",
        "gtid",
        "init_mask",
        "_gpu",
        "_instrs",
        "_mem_i",
        "_mem_f",
        "_mem_size",
        "_stats",
        "_cfg",
        "_lat",
        "_san",
    )

    def __init__(self, tb: "ThreadBlock", warp_index: int, context_slot: int) -> None:
        gpu = tb.gpu
        func = tb.func
        self.tb = tb
        self.warp_index = warp_index
        #: Warp-context slot within the SMX; determines this warp's
        #: hardware thread indices and local-memory segment.
        self.context_slot = context_slot
        #: Hardware thread index base fed to the AGT hash.  The prime
        #: per-SMX stride keeps concurrently launching warps on different
        #: SMXs in mostly disjoint index ranges under the AGT's
        #: power-of-two AND mask (see DESIGN.md).
        self.hw_slot_base = tb.smx.smx_id * 157 + context_slot * WARP_SIZE
        #: Monotonic age used by the greedy-then-oldest scheduler.
        self.age = 0
        self._gpu = gpu
        self._instrs = func.program.instructions
        self._mem_i = gpu.memory.i
        self._mem_f = gpu.memory.f
        self._mem_size = gpu.memory.size_words
        self._stats = gpu.stats
        self._cfg = gpu.config
        self._lat = gpu.latency
        self._san = gpu.sanitizer

        highest = func.program.max_register_index()
        self.regs_i = np.zeros((highest["int"] + 1, WARP_SIZE), dtype=np.int64)
        self.regs_f = np.zeros((highest["flt"] + 1, WARP_SIZE), dtype=np.float64)

        # Lane geometry within the block.
        bx, by, _bz = tb.block_dims
        linear = warp_index * WARP_SIZE + np.arange(WARP_SIZE, dtype=np.int64)
        threads = tb.block_threads
        self.init_mask = linear < threads
        clamped = np.minimum(linear, threads - 1)
        self.tid_x = clamped % bx
        self.tid_y = (clamped // bx) % by
        self.tid_z = clamped // (bx * by)
        self.gtid = tb.block_linear_index * threads + clamped

        self.stack: List[list] = [[0, -1, self.init_mask.copy()]]
        self.ready_cycle = 0
        self.finished = False
        self.at_barrier = False

    # ------------------------------------------------------------------
    # Scheduling predicates
    # ------------------------------------------------------------------
    def executable(self, cycle: int) -> bool:
        return (
            not self.finished and not self.at_barrier and self.ready_cycle <= cycle
        )

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------
    def _val_i(self, operand):
        if type(operand) is Reg:
            return self.regs_i[operand.idx]
        return operand.value

    def _val_f(self, operand):
        if type(operand) is Reg:
            if operand.bank == Bank.FLT:
                return self.regs_f[operand.idx]
            return self.regs_i[operand.idx].astype(np.float64)
        return operand.value

    def _write_i(self, reg: Reg, values, mask: np.ndarray) -> None:
        np.copyto(self.regs_i[reg.idx], values, where=mask, casting="unsafe")

    def _write_f(self, reg: Reg, values, mask: np.ndarray) -> None:
        np.copyto(self.regs_f[reg.idx], values, where=mask, casting="unsafe")

    # ------------------------------------------------------------------
    # Main step
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Execute one instruction for the active frame's lanes."""
        stack = self.stack
        frame = stack[-1]
        # Pop frames that reached their reconvergence point.
        while len(stack) > 1 and frame[1] >= 0 and frame[0] == frame[1]:
            stack.pop()
            frame = stack[-1]
        pc = frame[0]
        mask = frame[2]
        try:
            instr = self._instrs[pc]
        except IndexError:
            raise ExecutionError(
                f"warp ran off the end of kernel {self.tb.func.name!r} at pc={pc}"
            ) from None
        active = int(np.count_nonzero(mask))
        self._stats.record_issue(active)
        tracer = self._gpu.tracer
        if tracer is not None:
            tracer.on_issue(self, pc, instr.op, active, cycle)
        if self._san is not None:
            self._san.observe(self, pc, instr, mask, cycle)
        handler = _DISPATCH[instr.op]
        if not handler(self, instr, frame, mask, cycle):
            frame[0] = pc + 1

    # ------------------------------------------------------------------
    # ALU handlers (return True iff they updated the pc themselves)
    # ------------------------------------------------------------------
    def _alu_done(self, cycle: int, sfu: bool = False) -> None:
        self.ready_cycle = cycle + (self._cfg.sfu_latency if sfu else self._cfg.alu_latency)

    def _h_int_bin(self, instr, frame, mask, cycle, fn, sfu=False):
        self._write_i(instr.dst, fn(self._val_i(instr.a), self._val_i(instr.b)), mask)
        self._alu_done(cycle, sfu)
        return False

    def _h_iadd(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.add)

    def _h_isub(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.subtract)

    def _h_imul(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.multiply)

    def _h_idiv(self, instr, frame, mask, cycle):
        a = np.asarray(self._val_i(instr.a))
        b = np.asarray(self._val_i(instr.b))
        safe = np.where(b == 0, 1, b)
        self._write_i(instr.dst, a // safe, mask)
        self._alu_done(cycle, sfu=True)
        return False

    def _h_imod(self, instr, frame, mask, cycle):
        a = np.asarray(self._val_i(instr.a))
        b = np.asarray(self._val_i(instr.b))
        safe = np.where(b == 0, 1, b)
        self._write_i(instr.dst, a % safe, mask)
        self._alu_done(cycle, sfu=True)
        return False

    def _h_imin(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.minimum)

    def _h_imax(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.maximum)

    def _h_iand(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.bitwise_and)

    def _h_ior(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.bitwise_or)

    def _h_ixor(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.bitwise_xor)

    def _h_ishl(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.left_shift)

    def _h_ishr(self, instr, frame, mask, cycle):
        return self._h_int_bin(instr, frame, mask, cycle, np.right_shift)

    def _h_ineg(self, instr, frame, mask, cycle):
        self._write_i(instr.dst, np.negative(self._val_i(instr.a)), mask)
        self._alu_done(cycle)
        return False

    def _h_inot(self, instr, frame, mask, cycle):
        self._write_i(instr.dst, np.bitwise_not(np.asarray(self._val_i(instr.a))), mask)
        self._alu_done(cycle)
        return False

    def _h_mov(self, instr, frame, mask, cycle):
        self._write_i(instr.dst, self._val_i(instr.a), mask)
        self._alu_done(cycle)
        return False

    def _h_flt_bin(self, instr, frame, mask, cycle, fn, sfu=False):
        self._write_f(instr.dst, fn(self._val_f(instr.a), self._val_f(instr.b)), mask)
        self._alu_done(cycle, sfu)
        return False

    def _h_fadd(self, instr, frame, mask, cycle):
        return self._h_flt_bin(instr, frame, mask, cycle, np.add)

    def _h_fsub(self, instr, frame, mask, cycle):
        return self._h_flt_bin(instr, frame, mask, cycle, np.subtract)

    def _h_fmul(self, instr, frame, mask, cycle):
        return self._h_flt_bin(instr, frame, mask, cycle, np.multiply)

    def _h_fdiv(self, instr, frame, mask, cycle):
        a = np.asarray(self._val_f(instr.a), dtype=np.float64)
        b = np.asarray(self._val_f(instr.b), dtype=np.float64)
        safe = np.where(b == 0.0, 1.0, b)
        self._write_f(instr.dst, a / safe, mask)
        self._alu_done(cycle, sfu=True)
        return False

    def _h_fmin(self, instr, frame, mask, cycle):
        return self._h_flt_bin(instr, frame, mask, cycle, np.minimum)

    def _h_fmax(self, instr, frame, mask, cycle):
        return self._h_flt_bin(instr, frame, mask, cycle, np.maximum)

    def _h_fneg(self, instr, frame, mask, cycle):
        self._write_f(instr.dst, np.negative(self._val_f(instr.a)), mask)
        self._alu_done(cycle)
        return False

    def _h_fsqrt(self, instr, frame, mask, cycle):
        a = np.asarray(self._val_f(instr.a), dtype=np.float64)
        self._write_f(instr.dst, np.sqrt(np.abs(a)), mask)
        self._alu_done(cycle, sfu=True)
        return False

    def _h_fabs(self, instr, frame, mask, cycle):
        self._write_f(instr.dst, np.abs(np.asarray(self._val_f(instr.a))), mask)
        self._alu_done(cycle)
        return False

    def _h_fmov(self, instr, frame, mask, cycle):
        self._write_f(instr.dst, self._val_f(instr.a), mask)
        self._alu_done(cycle)
        return False

    def _h_itof(self, instr, frame, mask, cycle):
        self._write_f(instr.dst, np.asarray(self._val_i(instr.a), dtype=np.float64), mask)
        self._alu_done(cycle)
        return False

    def _h_ftoi(self, instr, frame, mask, cycle):
        a = np.asarray(self._val_f(instr.a), dtype=np.float64)
        self._write_i(instr.dst, a.astype(np.int64), mask)
        self._alu_done(cycle)
        return False

    def _h_setp(self, instr, frame, mask, cycle):
        fn = _CMP_FUNCS[instr.cmp]
        result = fn(
            np.asarray(self._val_i(instr.a)), np.asarray(self._val_i(instr.b))
        ).astype(np.int64)
        self._write_i(instr.dst, result, mask)
        self._alu_done(cycle)
        return False

    def _h_fsetp(self, instr, frame, mask, cycle):
        fn = _CMP_FUNCS[instr.cmp]
        result = fn(
            np.asarray(self._val_f(instr.a), dtype=np.float64),
            np.asarray(self._val_f(instr.b), dtype=np.float64),
        ).astype(np.int64)
        self._write_i(instr.dst, result, mask)
        self._alu_done(cycle)
        return False

    def _h_selp(self, instr, frame, mask, cycle):
        cond = np.asarray(self._val_i(instr.c)) != 0
        result = np.where(cond, self._val_i(instr.a), self._val_i(instr.b))
        self._write_i(instr.dst, result, mask)
        self._alu_done(cycle)
        return False

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------
    def _lane_addresses(self, instr, mask: np.ndarray) -> np.ndarray:
        base = self._val_i(instr.a)
        if isinstance(base, np.ndarray):
            addrs = base[mask] + instr.offset
        else:
            addrs = np.full(int(np.count_nonzero(mask)), base + instr.offset, dtype=np.int64)
        if addrs.size:
            lo = int(addrs.min())
            hi = int(addrs.max())
            if lo < 0 or hi >= self._mem_size:
                raise ExecutionError(
                    f"kernel {self.tb.func.name!r}: global access out of range "
                    f"(addr {lo}..{hi}, mem size {self._mem_size})"
                )
        return addrs

    def _memory_timing(self, addrs: np.ndarray, is_write: bool, cycle: int) -> None:
        segments = coalesce_addresses(addrs)
        self._stats.coalescing.record(addrs.size, segments.size)
        completion = self._gpu.memsys.warp_access(segments, is_write, cycle)
        if is_write:
            # Stores retire into the memory system; the warp does not wait.
            self.ready_cycle = cycle + self._cfg.alu_latency
        else:
            self.ready_cycle = completion

    def _h_ld(self, instr, frame, mask, cycle):
        addrs = self._lane_addresses(instr, mask)
        values = np.zeros(WARP_SIZE, dtype=np.int64)
        values[mask] = self._mem_i[addrs]
        self._write_i(instr.dst, values, mask)
        self._memory_timing(addrs, False, cycle)
        return False

    def _h_fld(self, instr, frame, mask, cycle):
        addrs = self._lane_addresses(instr, mask)
        values = np.zeros(WARP_SIZE, dtype=np.float64)
        values[mask] = self._mem_f[addrs]
        self._write_f(instr.dst, values, mask)
        self._memory_timing(addrs, False, cycle)
        return False

    def _h_st(self, instr, frame, mask, cycle):
        addrs = self._lane_addresses(instr, mask)
        src = self._val_i(instr.b)
        self._mem_i[addrs] = src[mask] if isinstance(src, np.ndarray) else src
        self._memory_timing(addrs, True, cycle)
        return False

    def _h_fst(self, instr, frame, mask, cycle):
        addrs = self._lane_addresses(instr, mask)
        src = self._val_f(instr.b)
        self._mem_f[addrs] = src[mask] if isinstance(src, np.ndarray) else src
        self._memory_timing(addrs, True, cycle)
        return False

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------
    def _shared_addresses(self, instr, mask: np.ndarray) -> np.ndarray:
        base = self._val_i(instr.a)
        if isinstance(base, np.ndarray):
            addrs = base[mask] + instr.offset
        else:
            addrs = np.full(int(np.count_nonzero(mask)), base + instr.offset, dtype=np.int64)
        size = self.tb.shared.size
        if addrs.size:
            lo = int(addrs.min())
            hi = int(addrs.max())
            if lo < 0 or hi >= size:
                raise ExecutionError(
                    f"kernel {self.tb.func.name!r}: shared access out of range "
                    f"(addr {lo}..{hi}, shared words {size})"
                )
        return addrs

    def _shared_conflict_degree(self, addrs: np.ndarray) -> int:
        """n-way bank conflict factor: max distinct addresses per bank.

        Duplicate addresses broadcast (no conflict); distinct addresses in
        the same bank serialize.
        """
        if addrs.size <= 1:
            return 1
        distinct = np.unique(addrs)
        if distinct.size == 1:
            return 1
        banks = distinct % self._cfg.shared_banks
        return int(np.bincount(banks).max())

    def _h_lds(self, instr, frame, mask, cycle):
        addrs = self._shared_addresses(instr, mask)
        values = np.zeros(WARP_SIZE, dtype=np.int64)
        values[mask] = self.tb.shared[addrs]
        self._write_i(instr.dst, values, mask)
        degree = self._shared_conflict_degree(addrs)
        self.ready_cycle = cycle + self._cfg.shared_latency * degree
        return False

    def _h_sts(self, instr, frame, mask, cycle):
        addrs = self._shared_addresses(instr, mask)
        src = self._val_i(instr.b)
        self.tb.shared[addrs] = src[mask] if isinstance(src, np.ndarray) else src
        degree = self._shared_conflict_degree(addrs)
        self.ready_cycle = cycle + self._cfg.shared_latency * degree
        return False

    # ------------------------------------------------------------------
    # Local memory (per-thread, interleaved layout, cached in the L1)
    # ------------------------------------------------------------------
    def _local_addresses(self, instr, mask: np.ndarray) -> np.ndarray:
        """Physical addresses for per-thread local offsets.

        CUDA's interleaved local layout: word ``offset`` of every thread
        is contiguous across lanes, so lane-uniform offsets coalesce.
        """
        offsets = self._val_i(instr.a)
        if isinstance(offsets, np.ndarray):
            active = offsets[mask] + instr.offset
        else:
            active = np.full(
                int(np.count_nonzero(mask)), offsets + instr.offset, dtype=np.int64
            )
        limit = self.tb.func.local_words
        if active.size:
            lo = int(active.min())
            hi = int(active.max())
            if lo < 0 or hi >= limit:
                raise ExecutionError(
                    f"kernel {self.tb.func.name!r}: local access out of range "
                    f"(offset {lo}..{hi}, local_words {limit})"
                )
        smx = self.tb.smx
        base = self._gpu.local_arena_base(smx.smx_id)
        threads = self._cfg.max_resident_threads
        lane_ids = self.context_slot * WARP_SIZE + np.flatnonzero(mask)
        return base + active * threads + lane_ids

    def _local_timing(self, addrs: np.ndarray, is_write: bool, cycle: int) -> None:
        segments = coalesce_addresses(addrs)
        self._stats.coalescing.record(addrs.size, segments.size)
        l1 = self.tb.smx.l1
        completion = cycle + self._cfg.l1_hit_latency
        missing = [int(seg) for seg in segments if not l1.access(int(seg))]
        if missing:
            done = self._gpu.memsys.warp_access(
                np.asarray(missing, dtype=np.int64), is_write, cycle
            )
            if done > completion:
                completion = done
        if is_write:
            self.ready_cycle = cycle + self._cfg.alu_latency
        else:
            self.ready_cycle = completion

    def _h_ldl(self, instr, frame, mask, cycle):
        addrs = self._local_addresses(instr, mask)
        values = np.zeros(WARP_SIZE, dtype=np.int64)
        values[mask] = self._mem_i[addrs]
        self._write_i(instr.dst, values, mask)
        self._local_timing(addrs, False, cycle)
        return False

    def _h_stl(self, instr, frame, mask, cycle):
        addrs = self._local_addresses(instr, mask)
        src = self._val_i(instr.b)
        self._mem_i[addrs] = src[mask] if isinstance(src, np.ndarray) else src
        self._local_timing(addrs, True, cycle)
        return False

    # ------------------------------------------------------------------
    # Warp-level primitives (shuffle / vote)
    # ------------------------------------------------------------------
    def _h_shfl_idx(self, instr, frame, mask, cycle):
        source = np.asarray(self._val_i(instr.a))
        lanes = np.asarray(self._val_i(instr.b)) % WARP_SIZE
        if source.ndim == 0:
            source = np.full(WARP_SIZE, source, dtype=np.int64)
        if lanes.ndim == 0:
            lanes = np.full(WARP_SIZE, lanes, dtype=np.int64)
        self._write_i(instr.dst, source[lanes], mask)
        self._alu_done(cycle)
        return False

    def _h_shfl_down(self, instr, frame, mask, cycle):
        source = np.asarray(self._val_i(instr.a))
        delta = int(np.asarray(self._val_i(instr.b)).max())
        if source.ndim == 0:
            source = np.full(WARP_SIZE, source, dtype=np.int64)
        lanes = np.arange(WARP_SIZE) + delta
        lanes = np.where(lanes < WARP_SIZE, lanes, np.arange(WARP_SIZE))
        self._write_i(instr.dst, source[lanes], mask)
        self._alu_done(cycle)
        return False

    def _h_vote(self, instr, frame, mask, cycle):
        predicate = np.asarray(self._val_i(instr.a)) != 0
        if predicate.ndim == 0:
            predicate = np.full(WARP_SIZE, bool(predicate))
        active = predicate & mask
        if instr.op == Opcode.VOTE_ANY:
            result = int(active.any())
        elif instr.op == Opcode.VOTE_ALL:
            result = int((predicate | ~mask).all())
        else:  # VOTE_BALLOT: bit i set iff lane i is active and true
            result = int(
                (active * (np.int64(1) << np.arange(WARP_SIZE, dtype=np.int64))).sum()
            )
        self._write_i(instr.dst, result, mask)
        self._alu_done(cycle)
        return False

    # ------------------------------------------------------------------
    # Atomics (serialized per lane, as hardware does for address conflicts)
    # ------------------------------------------------------------------
    def _h_atomic(self, instr, frame, mask, cycle):
        addrs_full = self._val_i(instr.a)
        lanes = np.flatnonzero(mask)
        mem = self._mem_i
        op = instr.op
        bvals = self._val_i(instr.b)
        cvals = self._val_i(instr.c) if instr.c is not None else None
        old = np.zeros(WARP_SIZE, dtype=np.int64)
        active_addrs = np.empty(lanes.size, dtype=np.int64)
        for pos, lane in enumerate(lanes):
            addr = int(addrs_full[lane]) if isinstance(addrs_full, np.ndarray) else int(addrs_full)
            addr += instr.offset
            if addr < 0 or addr >= self._mem_size:
                raise ExecutionError(
                    f"kernel {self.tb.func.name!r}: atomic out of range at {addr}"
                )
            active_addrs[pos] = addr
            value = int(bvals[lane]) if isinstance(bvals, np.ndarray) else int(bvals)
            current = int(mem[addr])
            old[lane] = current
            if op == Opcode.ATOM_ADD:
                mem[addr] = current + value
            elif op == Opcode.ATOM_MIN:
                if value < current:
                    mem[addr] = value
            elif op == Opcode.ATOM_MAX:
                if value > current:
                    mem[addr] = value
            elif op == Opcode.ATOM_OR:
                mem[addr] = current | value
            elif op == Opcode.ATOM_EXCH:
                mem[addr] = value
            else:  # ATOM_CAS: b is compare, c is the new value
                new = int(cvals[lane]) if isinstance(cvals, np.ndarray) else int(cvals)
                if current == value:
                    mem[addr] = new
        if instr.dst is not None:
            self._write_i(instr.dst, old, mask)
        self._memory_timing(active_addrs, False, cycle)
        return False

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _h_bra(self, instr, frame, mask, cycle):
        pc = frame[0]
        self._alu_done(cycle)
        if instr.pred is None:
            frame[0] = instr.target
            return True
        predv = self.regs_i[instr.pred.idx] != 0
        if not instr.pred_sense:
            predv = ~predv
        taken = mask & predv
        n_taken = int(np.count_nonzero(taken))
        if n_taken == 0:
            self._stats.branches_uniform += 1
            frame[0] = pc + 1
            return True
        if n_taken == int(np.count_nonzero(mask)):
            self._stats.branches_uniform += 1
            frame[0] = instr.target
            return True
        # Divergence: rewrite the current frame into the reconvergence
        # frame and push one frame per path (taken executes first).
        self._stats.branches_diverged += 1
        rpc = instr.reconv
        fall = mask & ~predv
        frame[0] = rpc
        self.stack.append([pc + 1, rpc, fall])
        self.stack.append([instr.target, rpc, taken])
        return True

    def _h_join(self, instr, frame, mask, cycle):
        # Reconvergence marker: frames are popped in step(); executing JOIN
        # just costs a cycle for the merged warp.
        self.ready_cycle = cycle + 1
        return False

    def _h_bar(self, instr, frame, mask, cycle):
        frame[0] += 1
        self.at_barrier = True
        self.tb.arrive_barrier(self, cycle)
        return True

    def _h_exit(self, instr, frame, mask, cycle):
        self.finished = True
        self.tb.warp_finished(self, cycle)
        return True

    def _h_nop(self, instr, frame, mask, cycle):
        self.ready_cycle = cycle + 1
        return False

    # ------------------------------------------------------------------
    # Special registers
    # ------------------------------------------------------------------
    def _h_read_special(self, instr, frame, mask, cycle):
        which = instr.special
        tb = self.tb
        if which == Special.TID_X:
            value = self.tid_x
        elif which == Special.TID_Y:
            value = self.tid_y
        elif which == Special.TID_Z:
            value = self.tid_z
        elif which == Special.NTID_X:
            value = tb.block_dims[0]
        elif which == Special.NTID_Y:
            value = tb.block_dims[1]
        elif which == Special.NTID_Z:
            value = tb.block_dims[2]
        elif which == Special.CTAID_X:
            value = tb.ctaid[0]
        elif which == Special.CTAID_Y:
            value = tb.ctaid[1]
        elif which == Special.CTAID_Z:
            value = tb.ctaid[2]
        elif which == Special.NCTAID_X:
            value = tb.grid_dims[0]
        elif which == Special.NCTAID_Y:
            value = tb.grid_dims[1]
        elif which == Special.NCTAID_Z:
            value = tb.grid_dims[2]
        elif which == Special.PARAM:
            value = tb.param_addr
        elif which == Special.GTID:
            value = self.gtid
        else:  # pragma: no cover - enum is exhaustive
            raise ExecutionError(f"unknown special register {which!r}")
        self._write_i(instr.dst, value, mask)
        self._alu_done(cycle)
        return False

    # ------------------------------------------------------------------
    # Device runtime: parameter buffers, streams, launches
    # ------------------------------------------------------------------
    def _h_stream_create(self, instr, frame, mask, cycle):
        ids = self._gpu.runtime.create_streams(int(np.count_nonzero(mask)))
        values = np.zeros(WARP_SIZE, dtype=np.int64)
        values[mask] = ids
        self._write_i(instr.dst, values, mask)
        self.ready_cycle = cycle + self._lat.stream_create
        return False

    def _h_get_param_buf(self, instr, frame, mask, cycle):
        count = int(np.count_nonzero(mask))
        bases = self._gpu.runtime.alloc_param_buffers(count, instr.size)
        values = np.zeros(WARP_SIZE, dtype=np.int64)
        values[mask] = bases
        self._write_i(instr.dst, values, mask)
        self.ready_cycle = cycle + self._lat.param_buffer_cycles(count)
        return False

    def _dim_lane(self, operand, lane: int) -> int:
        value = self._val_i(operand)
        if isinstance(value, np.ndarray):
            return int(value[lane])
        return int(value)

    def _collect_launches(self, instr, mask: np.ndarray):
        lanes = np.flatnonzero(mask)
        params = self._val_i(instr.a)
        requests = []
        for lane in lanes:
            lane = int(lane)
            grid = tuple(self._dim_lane(op, lane) for op in instr.grid_dims)
            block = tuple(self._dim_lane(op, lane) for op in instr.block_dims)
            param = int(params[lane]) if isinstance(params, np.ndarray) else int(params)
            requests.append((instr.kernel, param, grid, block, self.hw_slot_base + lane))
        return requests

    def _h_launch_device(self, instr, frame, mask, cycle):
        requests = self._collect_launches(instr, mask)
        stall = self._lat.launch_device_cycles(len(requests))
        self._gpu.runtime.submit_device_launches(requests, cycle + stall)
        self.ready_cycle = cycle + stall
        return False

    def _h_launch_agg(self, instr, frame, mask, cycle):
        requests = self._collect_launches(instr, mask)
        # Section 4.3: KDE search is pipelined over the 32 entries and the
        # AGT probe is a single-cycle hash; parameter-buffer allocation (the
        # dominant cost) was already paid at GET_PARAM_BUF.
        stall = (
            self._lat.kde_search_cycles(self._cfg.max_concurrent_kernels)
            + self._lat.agt_probe
        )
        self._gpu.runtime.submit_agg_launches(requests, cycle + stall)
        self.ready_cycle = cycle + stall
        return False


def _build_dispatch() -> Dict[Opcode, Callable]:
    return {
        Opcode.IADD: Warp._h_iadd,
        Opcode.ISUB: Warp._h_isub,
        Opcode.IMUL: Warp._h_imul,
        Opcode.IDIV: Warp._h_idiv,
        Opcode.IMOD: Warp._h_imod,
        Opcode.IMIN: Warp._h_imin,
        Opcode.IMAX: Warp._h_imax,
        Opcode.IAND: Warp._h_iand,
        Opcode.IOR: Warp._h_ior,
        Opcode.IXOR: Warp._h_ixor,
        Opcode.ISHL: Warp._h_ishl,
        Opcode.ISHR: Warp._h_ishr,
        Opcode.INEG: Warp._h_ineg,
        Opcode.INOT: Warp._h_inot,
        Opcode.MOV: Warp._h_mov,
        Opcode.FADD: Warp._h_fadd,
        Opcode.FSUB: Warp._h_fsub,
        Opcode.FMUL: Warp._h_fmul,
        Opcode.FDIV: Warp._h_fdiv,
        Opcode.FMIN: Warp._h_fmin,
        Opcode.FMAX: Warp._h_fmax,
        Opcode.FNEG: Warp._h_fneg,
        Opcode.FSQRT: Warp._h_fsqrt,
        Opcode.FABS: Warp._h_fabs,
        Opcode.FMOV: Warp._h_fmov,
        Opcode.ITOF: Warp._h_itof,
        Opcode.FTOI: Warp._h_ftoi,
        Opcode.SETP: Warp._h_setp,
        Opcode.FSETP: Warp._h_fsetp,
        Opcode.SELP: Warp._h_selp,
        Opcode.LD: Warp._h_ld,
        Opcode.ST: Warp._h_st,
        Opcode.FLD: Warp._h_fld,
        Opcode.FST: Warp._h_fst,
        Opcode.LDS: Warp._h_lds,
        Opcode.STS: Warp._h_sts,
        Opcode.LDL: Warp._h_ldl,
        Opcode.STL: Warp._h_stl,
        Opcode.SHFL_IDX: Warp._h_shfl_idx,
        Opcode.SHFL_DOWN: Warp._h_shfl_down,
        Opcode.VOTE_ANY: Warp._h_vote,
        Opcode.VOTE_ALL: Warp._h_vote,
        Opcode.VOTE_BALLOT: Warp._h_vote,
        Opcode.ATOM_ADD: Warp._h_atomic,
        Opcode.ATOM_MIN: Warp._h_atomic,
        Opcode.ATOM_MAX: Warp._h_atomic,
        Opcode.ATOM_OR: Warp._h_atomic,
        Opcode.ATOM_EXCH: Warp._h_atomic,
        Opcode.ATOM_CAS: Warp._h_atomic,
        Opcode.BRA: Warp._h_bra,
        Opcode.JOIN: Warp._h_join,
        Opcode.BAR: Warp._h_bar,
        Opcode.EXIT: Warp._h_exit,
        Opcode.NOP: Warp._h_nop,
        Opcode.READ_SPECIAL: Warp._h_read_special,
        Opcode.STREAM_CREATE: Warp._h_stream_create,
        Opcode.GET_PARAM_BUF: Warp._h_get_param_buf,
        Opcode.LAUNCH_DEVICE: Warp._h_launch_device,
        Opcode.LAUNCH_AGG: Warp._h_launch_agg,
    }


_DISPATCH = _build_dispatch()
