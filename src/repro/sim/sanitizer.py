"""Execution sanitizer: shadow-state correctness checks for the simulator.

DTBL's central claim is semantics preservation — dynamically launched,
coalesced thread blocks must behave exactly like their flat/CDP
equivalents — so the simulator needs a net that catches workloads (or
future core changes) that silently corrupt memory, deadlock a barrier or
launch malformed device-side grids.  When :attr:`repro.config.GPUConfig.sanitize`
is set (or the ``REPRO_SANITIZE`` environment variable is non-empty), a
:class:`Sanitizer` is attached to the GPU and observes every issued
instruction in *both* execution cores through one hook per
``Warp.step`` / ``FastWarp.step``.  Because both cores issue the same
instruction stream at the same cycles (they are stat-exact by
construction), the sanitizer produces identical findings under either.

Detectors
---------
``data-race`` / ``shared-race``
    Per-word last-writer/last-reader shadow state over global memory and
    per-block shared memory.  Two accesses conflict when they touch the
    same word from different threads, at least one is a **non-atomic
    write**, and no ordering separates them:

    * same block: no barrier between them (same barrier *epoch*);
    * different blocks: the prior accessor's block is still resident;
    * either way, the prior access must not already be *ordered before*
      the current block's view of memory: accesses before the block
      started are ordered by the launch itself (this is what makes
      parent-writes-params -> child-reads clean), and accesses before
      the block's last atomic operation or plain read of an
      atomically-updated word are ordered by that acquire
      (work-queue-style idiom: payload written before an atomically
      claimed ticket, or before a published counter was observed, is
      treated as ordered — including producer/consumer warps inside one
      persistent block);
    * same warp, same instruction: duplicate store addresses across lanes
      **with differing values** (divergent lanes storing the same value to
      the same word is the idempotent flag-store idiom, e.g. graph
      coloring's conflict clear, and is deterministic).

    Write-write pairs are additionally suppressed when the second store
    rewrites exactly the value the first stored (tracked in a per-word
    last-value shadow): unordered same-value stores — e.g. many child
    blocks of one high-degree vertex clearing the same local-max flag —
    produce the same memory state in every interleaving.

    Any pair in which *either* access is atomic is treated as
    synchronized: atomic-vs-atomic is ordered by the memory system, and a
    plain access racing an atomic flag (SSSP's plain ``inflag[v] = 0``
    reset vs the ``atom_cas`` claim, or a plain stale read of an
    atomically updated word) is the intentional benign-race idiom these
    irregular workloads are built on.  Only plain-vs-plain conflicts with
    at least one write are reported.  Only the last access per word is
    remembered, so a race can be masked by an intervening access — a
    standard shadow-state approximation.

``oob`` / ``use-after-free``
    Every global access is checked against the bump allocator's live-range
    map: words outside any live allocation are flagged, and words that
    once belonged to a ``free()``d range are reported as use-after-free.
    Word 0 (the null address) is never addressable.

``uninit-read``
    A plain ``LD``/``FLD`` of an allocated word that no device store,
    atomic, or host write has initialized.

``barrier-divergence``
    A warp issuing ``BAR`` with a partial active mask (divergent lanes
    will never arrive), a warp arriving at a barrier after a sibling warp
    already exited, and a warp exiting while siblings wait at a barrier.

``bad-launch``
    ``LAUNCH_DEVICE`` / ``LAUNCH_AGG`` with non-positive grid or block
    dimensions (zero-dim aggregated groups), block shapes exceeding the
    SMX thread limit, or an unregistered kernel name.

Findings are structured :class:`SanitizerFinding` records collected in a
:class:`SanitizerReport`; every occurrence is counted, while full records
are stored once per (kind, kernel, pc) site so hot loops cannot blow up
the report.  The sanitizer never changes execution: timing, statistics
and memory contents are identical with it on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from ..config import WARP_SIZE
from ..isa.instructions import (
    ATOMIC_OPS,
    Bank,
    GLOBAL_MEMORY_OPS,
    GLOBAL_WRITE_OPS,
    Opcode,
    Reg,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .gpu import GPU
    from .thread_block import ThreadBlock
    from .warp import Warp

#: Shadow "no block" / host sentinel in the writer/reader block fields.
_HOST = 0

#: Plain (non-atomic) global loads.
_PLAIN_READS = frozenset({Opcode.LD, Opcode.FLD})


@dataclass(frozen=True)
class SanitizerFinding:
    """One structured sanitizer finding.

    ``address`` is a global word address (or a shared-memory word index
    for ``shared-race``); ``-1`` when not applicable.  ``lanes`` are the
    warp lanes involved at the reporting access.
    """

    kind: str
    cycle: int
    smx: int
    kernel: str
    pc: int
    address: int = -1
    lanes: Tuple[int, ...] = ()
    detail: str = ""

    def __str__(self) -> str:
        where = f"{self.kernel}@pc={self.pc}" if self.pc >= 0 else self.kernel
        addr = f" addr={self.address}" if self.address >= 0 else ""
        lanes = f" lanes={list(self.lanes)}" if self.lanes else ""
        return (
            f"[{self.kind}] cycle={self.cycle} smx={self.smx} {where}"
            f"{addr}{lanes}: {self.detail}"
        )

    def to_dict(self) -> dict:
        """All fields as a JSON-safe dictionary (exact round trip)."""
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "smx": self.smx,
            "kernel": self.kernel,
            "pc": self.pc,
            "address": self.address,
            "lanes": list(self.lanes),
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SanitizerFinding":
        return cls(
            kind=data["kind"],
            cycle=data["cycle"],
            smx=data["smx"],
            kernel=data["kernel"],
            pc=data["pc"],
            address=data["address"],
            lanes=tuple(data["lanes"]),
            detail=data["detail"],
        )


class SanitizerReport:
    """Accumulated sanitizer findings.

    ``counts`` tracks every occurrence by kind; ``findings`` stores the
    first full record per (kind, kernel, pc) site, capped at
    ``max_records`` so a racy inner loop cannot make the report unbounded.
    """

    def __init__(self, max_records: int = 256) -> None:
        self.max_records = max_records
        self.counts: Dict[str, int] = {}
        self.findings: List[SanitizerFinding] = []
        self._sites: set = set()

    def add(self, finding: SanitizerFinding) -> None:
        self.counts[finding.kind] = self.counts.get(finding.kind, 0) + 1
        site = (finding.kind, finding.kernel, finding.pc)
        if site not in self._sites and len(self.findings) < self.max_records:
            self._sites.add(site)
            self.findings.append(finding)

    @property
    def clean(self) -> bool:
        """True iff no detector fired at all."""
        return not self.counts

    def total(self) -> int:
        return sum(self.counts.values())

    def by_kind(self, kind: str) -> List[SanitizerFinding]:
        return [f for f in self.findings if f.kind == kind]

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def to_dict(self) -> dict:
        """Counts and deduplicated findings, JSON-safe (exact round trip)."""
        return {
            "max_records": self.max_records,
            "counts": dict(self.counts),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SanitizerReport":
        report = cls(max_records=data["max_records"])
        report.counts = {kind: int(n) for kind, n in data["counts"].items()}
        report.findings = [
            SanitizerFinding.from_dict(finding) for finding in data["findings"]
        ]
        report._sites = {(f.kind, f.kernel, f.pc) for f in report.findings}
        return report

    def format(self) -> str:
        """Human-readable multi-line summary."""
        if self.clean:
            return "sanitizer: clean (no findings)"
        lines = [
            "sanitizer: "
            + ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.counts.items())
            )
        ]
        lines.extend(str(f) for f in self.findings)
        return "\n".join(lines)


class Sanitizer:
    """Per-GPU shadow state and detectors (see the module docstring)."""

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        self.report = SanitizerReport()
        n = gpu.memory.size_words
        # Per-word allocator shadow.  np.zeros is calloc-backed, so pages
        # for untouched regions of the (virtual) address space stay lazy.
        self._addressable = np.zeros(n, dtype=bool)
        self._freed = np.zeros(n, dtype=bool)
        self._init = np.zeros(n, dtype=bool)
        # Per-word last-writer / last-reader shadow.  Thread fields hold
        # block-linear thread id + 1 (0 = none); block fields hold the
        # accessor's block uid (0 = none / host).
        self._w_block = np.zeros(n, dtype=np.int32)
        self._w_thread = np.zeros(n, dtype=np.int32)
        self._w_epoch = np.zeros(n, dtype=np.int32)
        self._w_atomic = np.zeros(n, dtype=bool)
        self._w_cycle = np.zeros(n, dtype=np.int64)
        self._w_value = np.zeros(n, dtype=np.float64)
        self._r_block = np.zeros(n, dtype=np.int32)
        self._r_thread = np.zeros(n, dtype=np.int32)
        self._r_epoch = np.zeros(n, dtype=np.int32)
        self._r_atomic = np.zeros(n, dtype=bool)
        self._r_cycle = np.zeros(n, dtype=np.int64)
        # Per-block tables, indexed by block uid (uid 0 = host sentinel).
        cap = 1024
        self._alive = np.zeros(cap, dtype=bool)
        self._start = np.zeros(cap, dtype=np.int64)
        self._fence = np.full(cap, -1, dtype=np.int64)
        self._uids = 0
        self._epochs: Dict[int, int] = {}
        self._shared: Dict[int, tuple] = {}
        self._bar_seen: set = set()

    # ------------------------------------------------------------------
    # Memory-allocator observer protocol (GlobalMemory.observer)
    # ------------------------------------------------------------------
    def on_alloc(self, base: int, words: int) -> None:
        end = base + words
        self._addressable[base:end] = True
        self._freed[base:end] = False
        self._init[base:end] = False
        self._w_block[base:end] = _HOST
        self._r_block[base:end] = _HOST

    def on_free(self, base: int, words: int) -> None:
        end = base + words
        self._addressable[base:end] = False
        self._freed[base:end] = True

    def on_host_write(self, base: int, words: int) -> None:
        # Host writes happen while the device is idle: they initialize the
        # range and reset the race shadow (host access orders everything).
        end = base + words
        self._init[base:end] = True
        self._w_block[base:end] = _HOST
        self._r_block[base:end] = _HOST

    # ------------------------------------------------------------------
    # Block lifecycle (SMX hooks)
    # ------------------------------------------------------------------
    def on_block_start(self, tb: "ThreadBlock", cycle: int) -> None:
        self._uids += 1
        uid = self._uids
        tb.san_uid = uid
        if uid >= self._alive.size:
            grow = self._alive.size * 2
            self._alive = np.concatenate([self._alive, np.zeros(grow, dtype=bool)])
            self._start = np.concatenate([self._start, np.zeros(grow, dtype=np.int64)])
            self._fence = np.concatenate([self._fence, np.full(grow, -1, dtype=np.int64)])
        self._alive[uid] = True
        self._start[uid] = cycle
        self._fence[uid] = -1
        self._epochs[uid] = 0

    def on_block_finished(self, tb: "ThreadBlock", cycle: int) -> None:
        uid = tb.san_uid
        self._alive[uid] = False
        self._epochs.pop(uid, None)
        self._shared.pop(uid, None)

    # ------------------------------------------------------------------
    # Barrier hooks (ThreadBlock)
    # ------------------------------------------------------------------
    def on_barrier_release(self, tb: "ThreadBlock") -> None:
        uid = tb.san_uid
        if uid in self._epochs:
            self._epochs[uid] += 1

    def on_barrier_after_exit(self, tb: "ThreadBlock", warp: "Warp", cycle: int) -> None:
        """A warp reached BAR although a sibling warp already exited."""
        key = (tb.san_uid, "arrive-after-exit")
        if key in self._bar_seen:
            return
        self._bar_seen.add(key)
        self.report.add(
            SanitizerFinding(
                kind="barrier-divergence",
                cycle=cycle,
                smx=tb.smx.smx_id,
                kernel=tb.func.name,
                pc=-1,
                detail=(
                    f"warp {warp.warp_index} arrived at a barrier after a "
                    f"sibling warp exited ({tb.alive_warps} of "
                    f"{len(tb.warps)} warps still alive)"
                ),
            )
        )

    def on_exit_during_barrier(self, tb: "ThreadBlock", warp: "Warp", cycle: int) -> None:
        """A warp exited while sibling warps wait at a barrier."""
        key = (tb.san_uid, "exit-during-barrier")
        if key in self._bar_seen:
            return
        self._bar_seen.add(key)
        self.report.add(
            SanitizerFinding(
                kind="barrier-divergence",
                cycle=cycle,
                smx=tb.smx.smx_id,
                kernel=tb.func.name,
                pc=-1,
                detail=(
                    f"warp {warp.warp_index} exited while sibling warps "
                    "wait at a barrier (barrier released by warp exit)"
                ),
            )
        )

    # ------------------------------------------------------------------
    # Per-instruction hook (both cores call this from step())
    # ------------------------------------------------------------------
    def observe(self, warp: "Warp", pc: int, instr, mask: np.ndarray, cycle: int) -> None:
        op = instr.op
        if op in GLOBAL_MEMORY_OPS:
            self._check_global(warp, pc, instr, mask, cycle)
        elif op is Opcode.LDS or op is Opcode.STS:
            self._check_shared(warp, pc, instr, mask, cycle)
        elif op is Opcode.BAR:
            self._check_bar(warp, pc, mask, cycle)
        elif op is Opcode.LAUNCH_DEVICE or op is Opcode.LAUNCH_AGG:
            self._check_launch(warp, pc, instr, mask, cycle)

    # ------------------------------------------------------------------
    def _lane_values(self, warp: "Warp", operand, lanes: np.ndarray) -> np.ndarray:
        if type(operand) is Reg:
            return warp.regs_i[operand.idx][lanes]
        return np.full(lanes.size, operand.value, dtype=np.int64)

    def _stored_values(self, warp: "Warp", operand, lanes: np.ndarray) -> np.ndarray:
        """Per-lane values a store writes (float stores read the FLT bank)."""
        if type(operand) is Reg:
            bank = warp.regs_f if operand.bank is Bank.FLT else warp.regs_i
            return bank[operand.idx][lanes]
        return np.full(lanes.size, operand.value)

    def _emit(self, warp, pc, cycle, kind, address, lanes, detail) -> None:
        tb = warp.tb
        self.report.add(
            SanitizerFinding(
                kind=kind,
                cycle=cycle,
                smx=tb.smx.smx_id,
                kernel=tb.func.name,
                pc=pc,
                address=int(address),
                lanes=tuple(int(l) for l in np.atleast_1d(lanes)),
                detail=detail,
            )
        )

    def _check_global(self, warp, pc, instr, mask, cycle) -> None:
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        addrs = self._lane_values(warp, instr.a, lanes) + instr.offset
        op = instr.op
        atomic = op in ATOMIC_OPS
        is_write = op in GLOBAL_WRITE_OPS
        is_read = not is_write or atomic  # atomics read-modify-write

        # Hard bounds (the execution core raises right after us for these).
        inb = (addrs >= 0) & (addrs < self._addressable.size)
        if not inb.all():
            bad = np.flatnonzero(~inb)[0]
            self._emit(
                warp, pc, cycle, "oob", addrs[bad], lanes[~inb],
                f"access outside simulated memory (addr {int(addrs[bad])})",
            )
            addrs = addrs[inb]
            lanes = lanes[inb]
            if lanes.size == 0:
                return

        # Live-range check: OOB vs use-after-free.
        live = self._addressable[addrs]
        if not live.all():
            dead = ~live
            freed = self._freed[addrs] & dead
            if freed.any():
                i = int(np.flatnonzero(freed)[0])
                self._emit(
                    warp, pc, cycle, "use-after-free", addrs[i], lanes[freed],
                    f"access to freed allocation at word {int(addrs[i])}",
                )
            wild = dead & ~freed
            if wild.any():
                i = int(np.flatnonzero(wild)[0])
                self._emit(
                    warp, pc, cycle, "oob", addrs[i], lanes[wild],
                    f"access outside any live allocation at word {int(addrs[i])}",
                )

        # Uninitialized plain loads (atomics on fresh counters are common
        # and the RMW result is well-defined on the zeroed store; only
        # plain LD/FLD of never-written words are flagged).
        if op in _PLAIN_READS:
            uninit = live & ~self._init[addrs]
            if uninit.any():
                i = int(np.flatnonzero(uninit)[0])
                self._emit(
                    warp, pc, cycle, "uninit-read", addrs[i], lanes[uninit],
                    f"read of uninitialized word {int(addrs[i])}",
                )

        # ---------------- race detection -------------------------------
        # Any pair involving an atomic access is treated as synchronized
        # (see the module docstring): only plain accesses are checked, and
        # only against plain prior accesses.
        uid = warp.tb.san_uid
        tid1 = warp.warp_index * WARP_SIZE + lanes + 1  # thread id + 1
        epoch = self._epochs.get(uid, 0)
        # Accesses ordered before max(block start, last own atomic) are
        # launch- or acquire-ordered with respect to this block.
        ordered_before = max(int(self._start[uid]), int(self._fence[uid]))
        plain_write = is_write and not atomic
        values = self._stored_values(warp, instr.b, lanes) if plain_write else None

        # Against the last plain writer of each word.
        if not atomic:
            wb = self._w_block[addrs]
            gate = (wb != _HOST) & ~self._w_atomic[addrs]
            if gate.any():
                same = wb == uid
                conflict = gate & (self._w_cycle[addrs] > ordered_before) & (
                    (same & (self._w_thread[addrs] != tid1) & (self._w_epoch[addrs] == epoch))
                    | (~same & self._alive[wb])
                )
                if plain_write:
                    # A store that rewrites the last-written value is the
                    # idempotent flag-store idiom (outcome independent of
                    # order); only value-changing write-write pairs race.
                    conflict &= values != self._w_value[addrs]
                if conflict.any():
                    i = int(np.flatnonzero(conflict)[0])
                    a = int(addrs[i])
                    self._emit(
                        warp, pc, cycle, "data-race", a, lanes[conflict],
                        f"{'write' if is_write else 'read'} races prior write "
                        f"to word {a} by block uid {int(wb[i])} thread "
                        f"{int(self._w_thread[a]) - 1} at cycle {int(self._w_cycle[a])}",
                    )

        # A plain write also races prior plain reads by other threads.
        if plain_write:
            rb = self._r_block[addrs]
            gate = (rb != _HOST) & ~self._r_atomic[addrs]
            if gate.any():
                same = rb == uid
                conflict = gate & (self._r_cycle[addrs] > ordered_before) & (
                    (same & (self._r_thread[addrs] != tid1) & (self._r_epoch[addrs] == epoch))
                    | (~same & self._alive[rb])
                )
                if conflict.any():
                    i = int(np.flatnonzero(conflict)[0])
                    a = int(addrs[i])
                    self._emit(
                        warp, pc, cycle, "data-race", a, lanes[conflict],
                        f"write races prior read of word {a} by block uid "
                        f"{int(rb[i])} thread {int(self._r_thread[a]) - 1} "
                        f"at cycle {int(self._r_cycle[a])}",
                    )

            # Duplicate store addresses within one instruction: divergent
            # lanes of the same warp writing *different values* to the
            # same word (same-value duplicates are the idempotent
            # flag-store idiom and execute deterministically).
            if addrs.size > 1:
                uniq, counts = np.unique(addrs, return_counts=True)
                dups = uniq[counts > 1]
                if dups.size:
                    for a in dups:
                        sel = addrs == a
                        vals = values[sel]
                        if (vals != vals[0]).any():
                            self._emit(
                                warp, pc, cycle, "data-race", int(a), lanes[sel],
                                f"multiple lanes of one warp store differing "
                                f"values to word {int(a)} in the same "
                                "instruction",
                            )
                            break

        # ---------------- shadow update --------------------------------
        if is_write:
            self._w_block[addrs] = uid
            self._w_thread[addrs] = tid1
            self._w_epoch[addrs] = epoch
            self._w_atomic[addrs] = atomic
            self._w_cycle[addrs] = cycle
            if values is not None:
                self._w_value[addrs] = values
            self._init[addrs] = True
        if is_read:
            self._r_block[addrs] = uid
            self._r_thread[addrs] = tid1
            self._r_epoch[addrs] = epoch
            self._r_atomic[addrs] = atomic
            self._r_cycle[addrs] = cycle
        if atomic or (is_read and self._w_atomic[addrs].any()):
            # Acquire: an atomic of our own, or a plain read of an
            # atomically-updated word (observing a published counter, as
            # persistent-thread work queues do before reading the payload).
            self._fence[uid] = cycle

    # ------------------------------------------------------------------
    def _check_shared(self, warp, pc, instr, mask, cycle) -> None:
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        tb = warp.tb
        addrs = self._lane_values(warp, instr.a, lanes) + instr.offset
        size = tb.shared.size
        inb = (addrs >= 0) & (addrs < size)
        if not inb.all():  # the core raises ExecutionError right after us
            addrs = addrs[inb]
            lanes = lanes[inb]
            if lanes.size == 0:
                return
        uid = tb.san_uid
        shadow = self._shared.get(uid)
        if shadow is None:
            shadow = (
                np.zeros(size, dtype=np.int32),  # writer thread id + 1
                np.zeros(size, dtype=np.int32),  # writer epoch
                np.zeros(size, dtype=np.int32),  # reader thread id + 1
                np.zeros(size, dtype=np.int32),  # reader epoch
            )
            self._shared[uid] = shadow
        wt, we, rt, re = shadow
        tid1 = warp.warp_index * WARP_SIZE + lanes + 1
        epoch = self._epochs.get(uid, 0)
        is_write = instr.op is Opcode.STS

        conflict = (wt[addrs] != 0) & (wt[addrs] != tid1) & (we[addrs] == epoch)
        if is_write:
            conflict |= (rt[addrs] != 0) & (rt[addrs] != tid1) & (re[addrs] == epoch)
        if conflict.any():
            i = int(np.flatnonzero(conflict)[0])
            a = int(addrs[i])
            self._emit(
                warp, pc, cycle, "shared-race", a, lanes[conflict],
                f"{'store to' if is_write else 'load of'} shared word {a} "
                f"conflicts with thread {int(wt[a]) - 1 if wt[a] else int(rt[a]) - 1} "
                "with no barrier in between",
            )
        if is_write and addrs.size > 1:
            uniq, counts = np.unique(addrs, return_counts=True)
            if (counts > 1).any():
                a = int(uniq[np.flatnonzero(counts > 1)[0]])
                self._emit(
                    warp, pc, cycle, "shared-race", a, lanes[addrs == a],
                    f"multiple lanes of one warp store to shared word {a} "
                    "in the same instruction",
                )

        if is_write:
            wt[addrs] = tid1
            we[addrs] = epoch
        else:
            rt[addrs] = tid1
            re[addrs] = epoch

    # ------------------------------------------------------------------
    def _check_bar(self, warp, pc, mask, cycle) -> None:
        if np.array_equal(mask, warp.init_mask):
            return
        tb = warp.tb
        key = (tb.san_uid, warp.warp_index, pc)
        if key in self._bar_seen:
            return
        self._bar_seen.add(key)
        missing = np.flatnonzero(warp.init_mask & ~mask)
        self._emit(
            warp, pc, cycle, "barrier-divergence", -1, missing,
            f"warp {warp.warp_index} reached BAR with a partial active mask "
            f"({int(np.count_nonzero(mask))} of "
            f"{int(np.count_nonzero(warp.init_mask))} lanes); divergent "
            "lanes can never arrive",
        )

    # ------------------------------------------------------------------
    def _check_launch(self, warp, pc, instr, mask, cycle) -> None:
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        if instr.kernel not in self._gpu.kernels:
            self._emit(
                warp, pc, cycle, "bad-launch", -1, lanes,
                f"device launch of unregistered kernel {instr.kernel!r}",
            )
            return
        dims = [self._lane_values(warp, op, lanes) for op in instr.grid_dims]
        dims += [self._lane_values(warp, op, lanes) for op in instr.block_dims]
        nonpos = np.zeros(lanes.size, dtype=bool)
        for d in dims:
            nonpos |= d <= 0
        if nonpos.any():
            i = int(np.flatnonzero(nonpos)[0])
            shape = tuple(int(d[i]) for d in dims)
            self._emit(
                warp, pc, cycle, "bad-launch", -1, lanes[nonpos],
                f"device launch with non-positive dimension: "
                f"grid={shape[:3]} block={shape[3:]}",
            )
        threads = dims[3] * dims[4] * dims[5]
        too_big = threads > self._gpu.config.max_resident_threads
        if too_big.any():
            i = int(np.flatnonzero(too_big)[0])
            self._emit(
                warp, pc, cycle, "bad-launch", -1, lanes[too_big],
                f"device launch block of {int(threads[i])} threads exceeds "
                f"the SMX limit of {self._gpu.config.max_resident_threads}",
            )
