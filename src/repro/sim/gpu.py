"""Top-level GPU model: ties SMXs, KMU, Kernel Distributor, SMX scheduler,
memory system and the device runtime together and runs the simulation.

Timing advances with an event-driven cycle loop: the GPU only visits
cycles at which something can happen (a warp becomes ready, an event
fires), fast-forwarding across idle gaps while integrating the occupancy
statistic over the skipped interval.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..config import GPUConfig, LatencyModel
from ..errors import LaunchError, SimulationError
from ..memory.dram import MemorySubsystem
from ..memory.global_memory import GlobalMemory
from .hwq import HostLaunchSpec
from .kernel import KernelFunction, as_dims
from .kernel_distributor import KernelDistributor
from .kmu import DeviceLaunchSpec, KernelManagementUnit
from .smx import SMX
from .smx_scheduler import SMXScheduler
from .stats import LaunchKind, LaunchRecord, SimStats

from ..config import WORD_BYTES
from ..dtbl.aggregation import AggLaunchRequest

#: Sentinel burst horizon when no other SMX wake-up bounds the burst.
_FAR_FUTURE = 1 << 62


class DeviceRuntime:
    """Device-side runtime services invoked from warp instructions."""

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        self._stream_counter = itertools.count(1)
        self._param_sizes: Dict[int, int] = {}

    def create_streams(self, count: int) -> np.ndarray:
        """Allocate ``count`` device-side stream ids (functional only)."""
        return np.fromiter(
            (next(self._stream_counter) for _ in range(count)), dtype=np.int64, count=count
        )

    def alloc_param_buffers(self, count: int, size_words: int) -> np.ndarray:
        """cudaGetParameterBuffer for ``count`` lanes of one warp."""
        memory = self._gpu.memory
        bases = np.empty(count, dtype=np.int64)
        for i in range(count):
            base = memory.alloc(size_words)
            self._param_sizes[base] = size_words
            bases[i] = base
        return bases

    def param_bytes_for(self, param_addr: int) -> int:
        return self._param_sizes.get(param_addr, 0) * WORD_BYTES

    def submit_device_launches(self, requests: Sequence[tuple], deliver_cycle: int) -> None:
        """Deliver a warp's cudaLaunchDevice commands to the KMU."""
        gpu = self._gpu

        def deliver(cycle: int) -> None:
            for kernel_name, param_addr, grid, block, _hw_tid in requests:
                func = gpu.kernels[kernel_name]
                func.validate_block(block, gpu.config.max_resident_threads)
                blocks = grid[0] * grid[1] * grid[2]
                threads = blocks * block[0] * block[1] * block[2]
                record = LaunchRecord(
                    kind=LaunchKind.DEVICE_KERNEL,
                    kernel_name=kernel_name,
                    launch_cycle=cycle,
                    total_blocks=blocks,
                    total_threads=threads,
                    param_bytes=self.param_bytes_for(param_addr),
                    record_bytes=gpu.config.cdp_pending_kernel_bytes,
                )
                gpu.stats.launches.append(record)
                gpu.stats.add_footprint(record.pending_bytes)
                gpu.kmu.enqueue_device(
                    DeviceLaunchSpec(kernel_name, grid, block, param_addr, record)
                )

        gpu.schedule_event(deliver_cycle, deliver)

    def submit_agg_launches(self, requests: Sequence[tuple], deliver_cycle: int) -> None:
        """Deliver a warp's aggregation operation command to the scheduler."""
        gpu = self._gpu
        agg_requests = [
            AggLaunchRequest(kernel_name, param_addr, grid, block, hw_tid)
            for kernel_name, param_addr, grid, block, hw_tid in requests
        ]
        for req in agg_requests:
            gpu.kernels[req.kernel_name].validate_block(
                req.block_dims, gpu.config.max_resident_threads
            )

        def deliver(cycle: int) -> None:
            gpu.scheduler.process_aggregation(agg_requests, cycle)

        gpu.schedule_event(deliver_cycle, deliver)


class GPU:
    """The simulated GPU (Fig. 1 baseline plus the Fig. 4 DTBL extension)."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        latency: Optional[LatencyModel] = None,
        memory_words: int = 4 * 1024 * 1024,
    ) -> None:
        self.config = config or GPUConfig.k20c()
        self.latency = latency or LatencyModel.measured_k20c()
        self.memory = GlobalMemory(memory_words)
        self.memsys = MemorySubsystem(self.config)
        self.stats = SimStats(self.config)
        self.stats.dram = self.memsys.dram.stats
        self.kernels: Dict[str, KernelFunction] = {}
        self.distributor = KernelDistributor(self.config.max_concurrent_kernels)
        self.scheduler = SMXScheduler(self)
        self.kmu = KernelManagementUnit(self)
        self.runtime = DeviceRuntime(self)
        self.smxs: List[SMX] = [SMX(i, self) for i in range(self.config.num_smx)]
        self.cycle = 0
        #: Optional execution tracer (see :mod:`repro.sim.tracing`).
        self.tracer = None
        #: Optional execution sanitizer (see :mod:`repro.sim.sanitizer`):
        #: enabled via ``GPUConfig.sanitize`` or the ``REPRO_SANITIZE``
        #: environment variable; ``None`` otherwise (zero per-issue cost
        #: beyond one attribute check in each core's step()).
        self.sanitizer = None
        if self.config.sanitize or os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            from .sanitizer import Sanitizer

            self.sanitizer = Sanitizer(self)
            self.memory.observer = self.sanitizer
        #: Resident, unfinished warps across all SMXs (occupancy integral).
        self.active_warps = 0
        self._events: list = []
        self._event_seq = itertools.count()
        #: Fast core: per-SMX earliest wake-up cycle (``_FAR_FUTURE`` =
        #: idle), fed by :meth:`_notify_smx_ready`.  Entries may be
        #: conservatively early; an SMX woken with nothing to do simply
        #: no-ops its tick and re-derives its true next-ready cycle.
        self.fast_core = bool(self.config.fast_core)
        self._smx_ready_at: List[int] = [_FAR_FUTURE] * self.config.num_smx
        # Per-SMX local-memory arenas, allocated lazily on first use.
        self._local_arenas: List[Optional[int]] = [None] * self.config.num_smx

    def local_arena_base(self, smx_id: int) -> int:
        """Base address of an SMX's local-memory arena (lazy allocation).

        The arena holds ``max_local_words`` words for every potential
        resident thread, laid out interleaved (word w of all threads is
        contiguous) as CUDA local memory is.
        """
        base = self._local_arenas[smx_id]
        if base is None:
            words = self.config.max_resident_threads * self.config.max_local_words
            base = self.memory.alloc(words)
            self._local_arenas[smx_id] = base
        return base

    # ------------------------------------------------------------------
    # Kernel registration and host-side launching
    # ------------------------------------------------------------------
    def register_kernel(self, func: KernelFunction) -> KernelFunction:
        if func.name in self.kernels:
            raise LaunchError(f"kernel {func.name!r} is already registered")
        self.kernels[func.name] = func
        return func

    def write_params(self, values: Sequence[Union[int, float]]) -> int:
        """Allocate a parameter buffer and fill it with typed values."""
        if not values:
            return 0
        base = self.memory.alloc(len(values))
        for i, value in enumerate(values):
            if isinstance(value, float):
                self.memory.f[base + i] = value
            else:
                self.memory.i[base + i] = int(value)
        if self.memory.observer is not None:
            self.memory.observer.on_host_write(base, len(values))
        return base

    def host_launch(
        self,
        kernel_name: str,
        grid,
        block,
        params: Sequence[Union[int, float]] = (),
        stream: int = 0,
    ) -> HostLaunchSpec:
        """Launch a kernel from the host; returns the queued launch spec.

        The spec's ``param_addr`` is the parameter-buffer address; its
        ``record`` field is filled in once the KMU dispatches the kernel.
        """
        if kernel_name not in self.kernels:
            raise LaunchError(f"unknown kernel {kernel_name!r}")
        grid_dims = as_dims(grid)
        block_dims = as_dims(block)
        func = self.kernels[kernel_name]
        func.validate_block(block_dims, self.config.max_resident_threads)
        param_addr = self.write_params(params)
        spec = HostLaunchSpec(kernel_name, grid_dims, block_dims, param_addr, stream)
        self.kmu.enqueue_host(spec)
        return spec

    # ------------------------------------------------------------------
    # Event queue
    # ------------------------------------------------------------------
    def schedule_event(self, cycle: int, fn: Callable[[int], None]) -> None:
        if cycle < self.cycle:
            cycle = self.cycle
        heapq.heappush(self._events, (cycle, next(self._event_seq), fn))

    def _notify_smx_ready(self, smx_id: int, cycle: int) -> None:
        """An SMX gained issuable work at ``cycle`` (block arrival, barrier
        release).  Only the fast core consumes these wake-ups; the
        reference loop polls every SMX every visited cycle."""
        if self.fast_core and cycle < self._smx_ready_at[smx_id]:
            self._smx_ready_at[smx_id] = cycle

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _has_inflight_work(self) -> bool:
        return (
            self.kmu.pending_count > 0
            or self.distributor.occupied > 0
            or bool(self._events)
        )

    def run(self, max_cycles: Optional[int] = 200_000_000) -> SimStats:
        """Simulate until the GPU drains; returns the stats object.

        ``max_cycles`` is an absolute watchdog on the global cycle counter
        (which accumulates across successive :meth:`run` calls).
        """
        if self.fast_core:
            return self._run_fast(max_cycles)
        return self._run_reference(max_cycles)

    def _run_fast(self, max_cycles: Optional[int]) -> SimStats:
        """Event-driven loop: tick only the SMXs whose wake-up is due.

        Same-cycle SMXs tick in ascending ``smx_id`` — the order the
        reference loop's ``for smx in smxs`` imposes — because DRAM
        bank/row and L2 LRU state depend on access order.  When exactly
        one SMX is runnable (the common case for these workloads), its
        issue loop runs as a local burst (:meth:`SMX.burst`) without
        round-tripping through this loop each cycle.
        """
        events = self._events
        ready = self._smx_ready_at
        smxs = self.smxs
        stats = self.stats
        far = _FAR_FUTURE
        watchdog_horizon = far if max_cycles is None else max_cycles + 1
        n = len(smxs)
        while True:
            cycle = self.cycle
            while events and events[0][0] <= cycle:
                _, _, fn = heapq.heappop(events)
                fn(cycle)
            wake = min(ready)
            if wake <= cycle:
                first_id = ready.index(wake)
                ready[first_id] = far
                horizon = min(ready)
                if horizon > cycle:
                    # Single runnable SMX: burst locally, bounded by the
                    # next event, the next other-SMX wake-up, and the
                    # watchdog.
                    if watchdog_horizon < horizon:
                        horizon = watchdog_horizon
                    cycle, nxt = smxs[first_id].burst(cycle, horizon, events)
                    ready[first_id] = nxt if nxt is not None else far
                else:
                    # Several SMXs are due: restore the popped entry and
                    # tick every due SMX in ascending id (the reference
                    # loop's order).
                    ready[first_id] = wake
                    for smx_id in range(n):
                        if ready[smx_id] <= cycle:
                            smx = smxs[smx_id]
                            smx.tick(cycle)
                            nxt = smx.next_ready_cycle()
                            ready[smx_id] = nxt if nxt is not None else far
            next_cycle = min(ready)
            if events and events[0][0] < next_cycle:
                next_cycle = events[0][0]
            if next_cycle >= far:
                # Safety net: re-derive readiness straight from the SMXs so
                # a missed wake-up surfaces as continued progress (and gets
                # caught by the differential tests), never a false drain.
                rearmed = False
                for smx in smxs:
                    nxt = smx.next_ready_cycle()
                    if nxt is not None:
                        ready[smx.smx_id] = nxt
                        rearmed = True
                if rearmed:
                    continue
                if self._has_inflight_work():
                    raise SimulationError(
                        "simulator deadlock: in-flight work but no runnable "
                        f"warps or events at cycle {cycle}"
                    )
                break
            if next_cycle <= cycle:
                next_cycle = cycle + 1
            if max_cycles is not None and next_cycle > max_cycles:
                raise SimulationError(
                    f"watchdog: simulation exceeded {max_cycles} cycles"
                )
            stats.resident_warp_cycles += self.active_warps * (next_cycle - cycle)
            self.cycle = next_cycle
        stats.cycles = self.cycle
        return stats

    def _run_reference(self, max_cycles: Optional[int]) -> SimStats:
        """Reference loop: poll every SMX at every visited cycle."""
        events = self._events
        smxs = self.smxs
        while True:
            while events and events[0][0] <= self.cycle:
                _, _, fn = heapq.heappop(events)
                fn(self.cycle)
            for smx in smxs:
                smx.tick(self.cycle)
            next_cycle = None
            if events:
                next_cycle = events[0][0]
            for smx in smxs:
                ready = smx.next_ready_cycle()
                if ready is not None and (next_cycle is None or ready < next_cycle):
                    next_cycle = ready
            if next_cycle is None:
                if self._has_inflight_work():
                    raise SimulationError(
                        "simulator deadlock: in-flight work but no runnable "
                        f"warps or events at cycle {self.cycle}"
                    )
                break
            if next_cycle <= self.cycle:
                next_cycle = self.cycle + 1
            if max_cycles is not None and next_cycle > max_cycles:
                raise SimulationError(
                    f"watchdog: simulation exceeded {max_cycles} cycles"
                )
            self.stats.resident_warp_cycles += self.active_warps * (
                next_cycle - self.cycle
            )
            self.cycle = next_cycle
        self.stats.cycles = self.cycle
        return self.stats
