"""Top-level GPU model: ties SMXs, KMU, Kernel Distributor, SMX scheduler,
memory system and the device runtime together and runs the simulation.

Timing advances with an event-driven cycle loop: the GPU only visits
cycles at which something can happen (a warp becomes ready, an event
fires), fast-forwarding across idle gaps while integrating the occupancy
statistic over the skipped interval.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..config import GPUConfig, LatencyModel
from ..errors import LaunchError, SimulationError
from ..memory.dram import MemorySubsystem
from ..memory.global_memory import GlobalMemory
from .hwq import HostLaunchSpec
from .kernel import KernelFunction, as_dims
from .kernel_distributor import KernelDistributor
from .kmu import DeviceLaunchSpec, KernelManagementUnit
from .profiler import active_profiler
from .smx import SMX
from .smx_scheduler import SMXScheduler
from .stats import LaunchKind, LaunchRecord, SimStats

from ..config import WORD_BYTES
from ..dtbl.aggregation import AggLaunchRequest

#: Sentinel burst horizon when no other SMX wake-up bounds the burst.
_FAR_FUTURE = 1 << 62


class DeviceRuntime:
    """Device-side runtime services invoked from warp instructions."""

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        # Plain int counter (not itertools.count) so checkpoints can
        # serialize and restore it exactly.
        self._stream_counter = 1
        self._param_sizes: Dict[int, int] = {}

    def create_streams(self, count: int) -> np.ndarray:
        """Allocate ``count`` device-side stream ids (functional only)."""
        start = self._stream_counter
        self._stream_counter = start + count
        return np.arange(start, start + count, dtype=np.int64)

    def alloc_param_buffers(self, count: int, size_words: int) -> np.ndarray:
        """cudaGetParameterBuffer for ``count`` lanes of one warp."""
        memory = self._gpu.memory
        bases = np.empty(count, dtype=np.int64)
        for i in range(count):
            base = memory.alloc(size_words)
            self._param_sizes[base] = size_words
            bases[i] = base
        return bases

    def param_bytes_for(self, param_addr: int) -> int:
        return self._param_sizes.get(param_addr, 0) * WORD_BYTES

    def submit_device_launches(self, requests: Sequence[tuple], deliver_cycle: int) -> None:
        """Deliver a warp's cudaLaunchDevice commands to the KMU."""
        self._gpu.schedule_event(
            deliver_cycle, kind="device_launch_batch", payload=tuple(requests)
        )

    def _deliver_device_batch(self, requests: Sequence[tuple], cycle: int) -> None:
        gpu = self._gpu
        for kernel_name, param_addr, grid, block, _hw_tid in requests:
            func = gpu.kernels[kernel_name]
            func.validate_block(block, gpu.config.max_resident_threads)
            blocks = grid[0] * grid[1] * grid[2]
            threads = blocks * block[0] * block[1] * block[2]
            record = LaunchRecord(
                kind=LaunchKind.DEVICE_KERNEL,
                kernel_name=kernel_name,
                launch_cycle=cycle,
                total_blocks=blocks,
                total_threads=threads,
                param_bytes=self.param_bytes_for(param_addr),
                record_bytes=gpu.config.cdp_pending_kernel_bytes,
            )
            gpu.stats.launches.append(record)
            gpu.stats.add_footprint(record.pending_bytes)
            gpu.kmu.enqueue_device(
                DeviceLaunchSpec(kernel_name, grid, block, param_addr, record)
            )

    def submit_agg_launches(self, requests: Sequence[tuple], deliver_cycle: int) -> None:
        """Deliver a warp's aggregation operation command to the scheduler."""
        gpu = self._gpu
        for kernel_name, param_addr, grid, block, hw_tid in requests:
            gpu.kernels[kernel_name].validate_block(
                block, gpu.config.max_resident_threads
            )
        gpu.schedule_event(
            deliver_cycle, kind="agg_launch_batch", payload=tuple(requests)
        )

    def _deliver_agg_batch(self, requests: Sequence[tuple], cycle: int) -> None:
        agg_requests = [
            AggLaunchRequest(kernel_name, param_addr, grid, block, hw_tid)
            for kernel_name, param_addr, grid, block, hw_tid in requests
        ]
        self._gpu.scheduler.process_aggregation(agg_requests, cycle)


class GPU:
    """The simulated GPU (Fig. 1 baseline plus the Fig. 4 DTBL extension)."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        latency: Optional[LatencyModel] = None,
        memory_words: int = 4 * 1024 * 1024,
    ) -> None:
        self.config = config or GPUConfig.k20c()
        self.latency = latency or LatencyModel.measured_k20c()
        self.memory = GlobalMemory(memory_words)
        self.memsys = MemorySubsystem(self.config)
        self.stats = SimStats(self.config)
        self.stats.dram = self.memsys.dram.stats
        self.kernels: Dict[str, KernelFunction] = {}
        self.distributor = KernelDistributor(self.config.max_concurrent_kernels)
        self.scheduler = SMXScheduler(self)
        self.kmu = KernelManagementUnit(self)
        self.runtime = DeviceRuntime(self)
        self.smxs: List[SMX] = [SMX(i, self) for i in range(self.config.num_smx)]
        self.cycle = 0
        #: Optional execution tracer (see :mod:`repro.sim.tracing`).
        #: Starts as the process-global profiler when one is active
        #: (``--profile``; see :mod:`repro.sim.profiler`), else ``None``.
        self.tracer = active_profiler()
        #: Optional execution sanitizer (see :mod:`repro.sim.sanitizer`):
        #: enabled via ``GPUConfig.sanitize`` or the ``REPRO_SANITIZE``
        #: environment variable; ``None`` otherwise (zero per-issue cost
        #: beyond one attribute check in each core's step()).
        self.sanitizer = None
        if self.config.sanitize or os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            from .sanitizer import Sanitizer

            self.sanitizer = Sanitizer(self)
            self.memory.observer = self.sanitizer
        #: Resident, unfinished warps across all SMXs (occupancy integral).
        self.active_warps = 0
        #: Pending simulation events: ``(cycle, seq, fn, kind, payload)``
        #: heap entries.  ``kind``/``payload`` describe how to rebuild
        #: ``fn`` after a checkpoint restore (see :mod:`repro.state`);
        #: both are ``None`` for ad-hoc events, which a checkpoint
        #: rejects.
        self._events: list = []
        self._event_seq = 0
        #: Monotonic id assigned to every host launch spec, so restored
        #: state can be matched back onto the replayed specs the host
        #: program holds (see :mod:`repro.state.snapshot`).
        self._launch_seq = 0
        self._specs_by_seq: Dict[int, HostLaunchSpec] = {}
        #: Number of completed-or-started :meth:`run` calls; checkpoints
        #: record it so resume can target the right run of a multi-run
        #: host program.
        self._run_index = 0
        #: Restore bundle consumed by the next matching :meth:`run` call.
        self._pending_resume = None
        #: Periodic-checkpoint configuration (see
        #: :meth:`repro.runtime.host_api.Device.configure_checkpoint`).
        #: Stored on the GPU because workload drivers synchronize many
        #: times internally; per-call arguments would miss those runs.
        self._checkpoint_every: Optional[int] = None
        self._checkpoint_path = None
        self._on_checkpoint = None
        self._checkpoint_fingerprint: Optional[str] = None
        #: Execution-core selection (see :attr:`GPUConfig.core`): the
        #: vector core is the fast core plus SoA group dispatch, so
        #: ``fast_core`` (the event-driven main loop) covers both.
        core = self.config.execution_core
        self.fast_core = core != "reference"
        self.vector_core = core == "vector"
        #: Vector core: per-program SoA register slabs, keyed by
        #: ``id(program)`` (each slab holds a strong reference to its
        #: program, so ids cannot be recycled while registered).
        self._vector_slabs: Dict[int, "RegisterSlab"] = {}
        #: Fast core: per-SMX earliest wake-up cycle (``_FAR_FUTURE`` =
        #: idle), fed by :meth:`_notify_smx_ready`.  Entries may be
        #: conservatively early; an SMX woken with nothing to do simply
        #: no-ops its tick and re-derives its true next-ready cycle.
        self._smx_ready_at: List[int] = [_FAR_FUTURE] * self.config.num_smx
        #: Fast core: the single GPU-wide ready heap.  Entries are
        #: ``(sched, smx_id, ready, age, warp)`` — see :meth:`_run_fast`
        #: for the key's ordering contract.  ``None`` under the
        #: reference core, which keeps per-SMX heaps and polls them.
        self._gheap: Optional[list] = [] if self.fast_core else None
        # Per-SMX local-memory arenas, allocated lazily on first use.
        self._local_arenas: List[Optional[int]] = [None] * self.config.num_smx

    def _vector_slab(self, program, n_int: int, n_flt: int) -> "RegisterSlab":
        """The SoA register slab for ``program`` (created on first use).

        Sized for the GPU-wide resident-warp maximum up front: the slab
        must never grow, because live warps hold 2-D views into it.
        """
        slabs = self._vector_slabs
        slab = slabs.get(id(program))
        if slab is None:
            from .vector_warp import RegisterSlab

            rows = self.config.num_smx * self.config.max_resident_warps
            slab = slabs[id(program)] = RegisterSlab(program, rows, n_int, n_flt)
        return slab

    def local_arena_base(self, smx_id: int) -> int:
        """Base address of an SMX's local-memory arena (lazy allocation).

        The arena holds ``max_local_words`` words for every potential
        resident thread, laid out interleaved (word w of all threads is
        contiguous) as CUDA local memory is.
        """
        base = self._local_arenas[smx_id]
        if base is None:
            words = self.config.max_resident_threads * self.config.max_local_words
            base = self.memory.alloc(words)
            self._local_arenas[smx_id] = base
        return base

    # ------------------------------------------------------------------
    # Kernel registration and host-side launching
    # ------------------------------------------------------------------
    def register_kernel(self, func: KernelFunction) -> KernelFunction:
        if func.name in self.kernels:
            raise LaunchError(f"kernel {func.name!r} is already registered")
        self.kernels[func.name] = func
        return func

    def write_params(self, values: Sequence[Union[int, float]]) -> int:
        """Allocate a parameter buffer and fill it with typed values."""
        if not values:
            return 0
        base = self.memory.alloc(len(values))
        for i, value in enumerate(values):
            if isinstance(value, float):
                self.memory.f[base + i] = value
            else:
                self.memory.i[base + i] = int(value)
        if self.memory.observer is not None:
            self.memory.observer.on_host_write(base, len(values))
        return base

    def host_launch(
        self,
        kernel_name: str,
        grid,
        block,
        params: Sequence[Union[int, float]] = (),
        stream: int = 0,
    ) -> HostLaunchSpec:
        """Launch a kernel from the host; returns the queued launch spec.

        The spec's ``param_addr`` is the parameter-buffer address; its
        ``record`` field is filled in once the KMU dispatches the kernel.
        """
        if kernel_name not in self.kernels:
            raise LaunchError(f"unknown kernel {kernel_name!r}")
        grid_dims = as_dims(grid)
        block_dims = as_dims(block)
        func = self.kernels[kernel_name]
        func.validate_block(block_dims, self.config.max_resident_threads)
        param_addr = self.write_params(params)
        spec = HostLaunchSpec(kernel_name, grid_dims, block_dims, param_addr, stream)
        spec.seq = self._launch_seq
        self._launch_seq += 1
        self._specs_by_seq[spec.seq] = spec
        self.kmu.enqueue_host(spec)
        return spec

    # ------------------------------------------------------------------
    # Event queue
    # ------------------------------------------------------------------
    def schedule_event(
        self,
        cycle: int,
        fn: Optional[Callable[[int], None]] = None,
        kind: Optional[str] = None,
        payload: object = None,
    ) -> None:
        """Schedule ``fn(cycle)`` (or the ``kind`` event) at ``cycle``.

        Internal callers pass ``kind``/``payload`` instead of a closure:
        the callable is built by :meth:`_event_fn`, the same factory a
        checkpoint restore uses to rebuild pending events, so live and
        restored simulations execute identical code.  A raw ``fn`` with
        no ``kind`` still works but cannot be checkpointed.
        """
        if cycle < self.cycle:
            cycle = self.cycle
        if fn is None:
            fn = self._event_fn(kind, payload)
        seq = self._event_seq
        self._event_seq = seq + 1
        heapq.heappush(self._events, (cycle, seq, fn, kind, payload))

    def _event_fn(self, kind: Optional[str], payload: object) -> Callable[[int], None]:
        """Build the callable for a described event (live or restored)."""
        if kind == "device_launch_batch":
            runtime = self.runtime
            return lambda cycle: runtime._deliver_device_batch(payload, cycle)
        if kind == "agg_launch_batch":
            runtime = self.runtime
            return lambda cycle: runtime._deliver_agg_batch(payload, cycle)
        if kind == "kmu_activate":
            return self.kmu._make_activator(payload)
        if kind == "kmu_retry":
            return self.kmu._make_retry()
        if kind == "distribute":
            return self.scheduler._run_distribute
        if kind == "gate_retry":
            return self.scheduler._make_gate_retry(payload)
        raise SimulationError(f"unknown event kind {kind!r}")

    def _notify_smx_ready(self, smx_id: int, cycle: int) -> None:
        """An SMX gained issuable work at ``cycle`` (block arrival, barrier
        release).  Only the fast core consumes these wake-ups; the
        reference loop polls every SMX every visited cycle."""
        if self.fast_core and cycle < self._smx_ready_at[smx_id]:
            self._smx_ready_at[smx_id] = cycle

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _has_inflight_work(self) -> bool:
        return (
            self.kmu.pending_count > 0
            or self.distributor.occupied > 0
            or bool(self._events)
        )

    def run(
        self,
        max_cycles: Optional[int] = 200_000_000,
        checkpoint_every: Optional[int] = None,
        checkpoint_path=None,
        on_checkpoint=None,
    ) -> SimStats:
        """Simulate until the GPU drains; returns the stats object.

        ``max_cycles`` is an absolute watchdog on the global cycle counter
        (which accumulates across successive :meth:`run` calls).

        ``checkpoint_every`` snapshots the full simulator state every N
        simulated cycles (see :mod:`repro.state`), writing it atomically
        to ``checkpoint_path`` and/or passing the document to
        ``on_checkpoint``.  Explicit arguments override the stored
        configuration from ``Device.configure_checkpoint``.  A pending
        resume armed via :func:`repro.state.prepare_resume` is consumed
        at the entry of the :meth:`run` call whose index matches the
        checkpoint's, restoring the saved cycle and continuing.
        """
        self._run_index += 1
        if (
            self._pending_resume is not None
            and self._pending_resume[0] == self._run_index
        ):
            from ..state import snapshot as _snapshot

            doc = self._pending_resume[1]
            self._pending_resume = None
            _snapshot.restore_document(self, doc)
        every = checkpoint_every if checkpoint_every is not None else self._checkpoint_every
        path = checkpoint_path if checkpoint_path is not None else self._checkpoint_path
        callback = on_checkpoint if on_checkpoint is not None else self._on_checkpoint
        checkpoint = None
        if every:
            from ..state import snapshot as _snapshot

            fingerprint = self._checkpoint_fingerprint

            def checkpoint() -> None:
                doc = _snapshot.capture_document(self, fingerprint)
                if path is not None:
                    _snapshot.save_checkpoint(path, doc)
                if callback is not None:
                    callback(doc)

        if self.fast_core:
            return self._run_fast(max_cycles, every, checkpoint)
        return self._run_reference(max_cycles, every, checkpoint)

    def _run_fast(
        self,
        max_cycles: Optional[int],
        ckpt_every: Optional[int] = None,
        checkpoint=None,
    ) -> SimStats:
        """Event-driven loop over one GPU-wide ready heap.

        Heap entries are ``(sched, smx_id, ready, age, warp)``.
        ``sched`` is the earliest cycle the entry may issue — later than
        ``ready`` only when an issue-budget conflict deferred the warp —
        and the tuple order reproduces the reference loop exactly:
        visited cycles ascending, same-cycle SMXs in ascending
        ``smx_id`` (the ``for smx in smxs`` order; DRAM bank/row and L2
        LRU state depend on access order), same-SMX warps by ``(ready,
        age)`` (the per-SMX GTO heap key), and at most ``issue_width``
        issues per SMX per visited cycle.

        Each popped warp executes through one of the window forms of
        :class:`~repro.sim.fast_warp.FastWarp`, bounded by the heap head
        and the event queue.  Because the heap covers every runnable
        warp on every SMX, the sole-actor window (which advances
        ``self.cycle`` past multi-instruction spans) and budget-safe
        run-ahead with in-order memory-op inlining apply GPU-wide — the
        per-SMX predecessor of this loop could only prove those bounds
        while a single SMX was runnable.
        """
        events = self._events
        gheap = self._gheap
        smxs = self.smxs
        stats = self.stats
        cfg = self.config
        far = _FAR_FUTURE
        watchdog_horizon = far if max_cycles is None else max_cycles + 1
        width = cfg.issue_width
        round_robin = cfg.warp_scheduler == "rr"
        # Budget-safe run-ahead preconditions (see FastWarp.step_free_window):
        # GTO ages, no interleaving observers, and op latencies that always
        # advance time so per-pop budget counting stays exact.
        free_ok = (
            not round_robin
            and self.tracer is None
            and self.sanitizer is None
            and cfg.alu_latency >= 1
            and cfg.sfu_latency >= 1
        )
        inline_mem = (
            free_ok and cfg.l1_hit_latency >= 1 and cfg.l2_hit_latency >= 1
        )
        # Vector-core group dispatch preconditions: GTO (grouping relies
        # on stable ages), no sanitizer (it observes the global
        # interleaving), a tracer only if it declares itself
        # order-insensitive, and latencies that make the cohort-lag
        # bound meaningful (see GroupDispatcher).  Unlike free_ok this
        # tolerates a group-safe tracer, so profiling keeps the batched
        # path.
        dispatcher = None
        if (
            self.vector_core
            and not round_robin
            and self.sanitizer is None
            and (self.tracer is None or getattr(self.tracer, "group_safe", False))
            and cfg.alu_latency >= 1
            and cfg.sfu_latency >= 1
            and cfg.l2_hit_latency >= 1
        ):
            from .smx_scheduler import GroupDispatcher

            dispatcher = GroupDispatcher(self)
        n = len(smxs)
        issue_at = [-1] * n  # last cycle each SMX issued at ...
        issued_n = [0] * n  # ... and how many issues it made there
        heappop = heapq.heappop
        heappush = heapq.heappush
        cycle = self.cycle
        next_ckpt = cycle + ckpt_every if ckpt_every else far
        # One fused bound guards both the watchdog and the next periodic
        # checkpoint, so the checkpoint-off hot path pays exactly one
        # compare per cycle advance (`next_ckpt` stays at `far`).
        limit = next_ckpt if next_ckpt < watchdog_horizon else watchdog_horizon
        while True:
            # Visit `cycle`: deliver due events first — the reference
            # loop drains events before any SMX ticks at a visited
            # cycle.  Events scheduled *during* the issue loop below
            # wait for the next visited cycle, exactly as they wait for
            # the reference loop's next iteration.
            while events and events[0][0] <= cycle:
                heappop(events)[2](cycle)
            # Vector core: try to issue the whole due set as SoA warp
            # groups.  On success nothing is left due at this cycle and
            # the pop loop below falls straight through to the advance.
            # The peek guard needs at least two entries due now; the
            # heap invariant puts the second-smallest key at index 1 or
            # 2, so this filters single-warp cycles without popping
            # (stale entries can only make it pass spuriously — the
            # dispatcher re-checks).
            if (
                dispatcher is not None
                and len(gheap) > 1
                and gheap[0][0] <= cycle
                and (
                    gheap[1][0] <= cycle
                    or (len(gheap) > 2 and gheap[2][0] <= cycle)
                )
            ):
                dispatcher.try_dispatch(cycle, watchdog_horizon)
            # Issue every warp due at this cycle, in reference order.
            while gheap:
                entry = gheap[0]
                warp = entry[4]
                if (
                    warp.finished
                    or warp.at_barrier
                    or entry[2] != warp.ready_cycle
                ):
                    heappop(gheap)  # stale (lazy deletion)
                    continue
                if entry[0] > cycle:
                    break
                heappop(gheap)
                smx_id = entry[1]
                if issue_at[smx_id] == cycle:
                    if issued_n[smx_id] >= width:
                        # Budget-bound: retry next cycle.  Keeping the
                        # original ready preserves the per-SMX (ready,
                        # age) order among deferred and fresh warps —
                        # the order the reference heap yields at that
                        # cycle.
                        heappush(
                            gheap, (cycle + 1, smx_id, entry[2], entry[3], warp)
                        )
                        continue
                    issued_n[smx_id] += 1
                else:
                    issue_at[smx_id] = cycle
                    issued_n[smx_id] = 1
                smx = smxs[smx_id]
                if free_ok and smx.resident_warps <= width:
                    warp.step_free_window(
                        cycle, watchdog_horizon, events, gheap, inline_mem
                    )
                elif gheap and gheap[0][0] <= cycle + 1:
                    # Another entry is due at this cycle or the next, so
                    # the window bound is at most `cycle + 1` and only
                    # one instruction can issue before it (ops that
                    # advance time land at `cycle + latency >= bound`;
                    # zero-latency ops end the window on their own, and
                    # fused regions need `>= 2` cycles of room): skip
                    # the window machinery entirely.  (A stale head only
                    # shortens the window we would have opened — never
                    # changes the result.)
                    warp.step(cycle)
                else:
                    active = self.active_warps
                    last = warp.step_window(
                        cycle, watchdog_horizon, events, gheap
                    )
                    if last > cycle:
                        # Sole-actor advance: only this warp issued over
                        # (cycle, last], with the pre-window warp count
                        # resident throughout (EXIT can only end a
                        # window).  Budget counters reset lazily at the
                        # new cycle.
                        stats.resident_warp_cycles += active * (last - cycle)
                        self.cycle = cycle = last
                if not warp.finished and not warp.at_barrier:
                    if round_robin:
                        warp.age = smx._seq
                        smx._seq += 1
                    heappush(
                        gheap,
                        (
                            warp.ready_cycle,
                            smx_id,
                            warp.ready_cycle,
                            warp.age,
                            warp,
                        ),
                    )
            # Advance to the next actionable cycle.  The issue loop left
            # the heap head stale-free, so its sched is a tight bound.
            next_cycle = gheap[0][0] if gheap else far
            if events and events[0][0] < next_cycle:
                next_cycle = events[0][0]
            if next_cycle >= far:
                # Safety net: re-derive readiness straight from the
                # resident warps so a lost heap entry surfaces as
                # continued progress (and gets caught by the
                # differential tests), never a false drain.
                rearmed = False
                for smx in smxs:
                    for tb in smx.blocks:
                        for w in tb.warps:
                            if not w.finished and not w.at_barrier:
                                heappush(
                                    gheap,
                                    (
                                        w.ready_cycle,
                                        smx.smx_id,
                                        w.ready_cycle,
                                        w.age,
                                        w,
                                    ),
                                )
                                rearmed = True
                if rearmed:
                    continue
                if self._has_inflight_work():
                    raise SimulationError(
                        "simulator deadlock: in-flight work but no runnable "
                        f"warps or events at cycle {cycle}"
                    )
                break
            if next_cycle <= cycle:
                next_cycle = cycle + 1
            if next_cycle >= limit:
                if next_cycle >= watchdog_horizon:
                    raise SimulationError(
                        f"watchdog: simulation exceeded {max_cycles} cycles"
                    )
                stats.resident_warp_cycles += self.active_warps * (
                    next_cycle - cycle
                )
                self.cycle = cycle = next_cycle
                # Checkpoint only at the inter-cycle boundary: events not
                # yet drained at `cycle`, issue-budget locals lazily
                # reset, so the captured state is exactly what a fresh
                # loop entry would see.
                checkpoint()
                next_ckpt = cycle + ckpt_every
                limit = (
                    next_ckpt
                    if next_ckpt < watchdog_horizon
                    else watchdog_horizon
                )
                continue
            stats.resident_warp_cycles += self.active_warps * (next_cycle - cycle)
            self.cycle = cycle = next_cycle
        stats.cycles = self.cycle
        return stats

    def _run_reference(
        self,
        max_cycles: Optional[int],
        ckpt_every: Optional[int] = None,
        checkpoint=None,
    ) -> SimStats:
        """Reference loop: poll every SMX at every visited cycle."""
        events = self._events
        smxs = self.smxs
        # Fused watchdog/checkpoint bound, as in :meth:`_run_fast`: the
        # checkpoint-off path pays one compare per cycle advance.
        watchdog_horizon = (
            _FAR_FUTURE if max_cycles is None else max_cycles + 1
        )
        next_ckpt = self.cycle + ckpt_every if ckpt_every else _FAR_FUTURE
        limit = next_ckpt if next_ckpt < watchdog_horizon else watchdog_horizon
        while True:
            while events and events[0][0] <= self.cycle:
                heapq.heappop(events)[2](self.cycle)
            for smx in smxs:
                smx.tick(self.cycle)
            next_cycle = None
            if events:
                next_cycle = events[0][0]
            for smx in smxs:
                ready = smx.next_ready_cycle()
                if ready is not None and (next_cycle is None or ready < next_cycle):
                    next_cycle = ready
            if next_cycle is None:
                if self._has_inflight_work():
                    raise SimulationError(
                        "simulator deadlock: in-flight work but no runnable "
                        f"warps or events at cycle {self.cycle}"
                    )
                break
            if next_cycle <= self.cycle:
                next_cycle = self.cycle + 1
            if next_cycle >= limit:
                if next_cycle >= watchdog_horizon:
                    raise SimulationError(
                        f"watchdog: simulation exceeded {max_cycles} cycles"
                    )
                self.stats.resident_warp_cycles += self.active_warps * (
                    next_cycle - self.cycle
                )
                self.cycle = next_cycle
                checkpoint()
                next_ckpt = next_cycle + ckpt_every
                limit = (
                    next_ckpt
                    if next_ckpt < watchdog_horizon
                    else watchdog_horizon
                )
                continue
            self.stats.resident_warp_cycles += self.active_warps * (
                next_cycle - self.cycle
            )
            self.cycle = next_cycle
        self.stats.cycles = self.cycle
        return self.stats
