"""Time-series sampling of machine state.

A :class:`TimelineSampler` piggybacks on the tracer hook to record, at a
configurable cycle granularity, the quantities whose *averages* the paper
reports — resident warps (occupancy), Kernel Distributor occupancy, AGT
occupancy, and the pending-launch footprint — as actual time series.
This is what you plot to see, e.g., CDP's launch bursts saturating the
32-entry KDE while DTBL's aggregated groups sail past it.

Because the simulator fast-forwards idle gaps, samples are taken on issue
events and tagged with their cycle; consumers should treat the series as
irregularly sampled (the `resample` helper buckets it evenly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from .tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU


@dataclass(frozen=True)
class Sample:
    cycle: int
    resident_warps: int
    kde_occupied: int
    agt_occupied: int
    footprint_bytes: int
    pending_device_kernels: int


class TimelineSampler(Tracer):
    """Samples machine-level state every ``interval`` cycles of progress."""

    def __init__(self, gpu: "GPU", interval: int = 500) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self._gpu = gpu
        self.interval = interval
        self.samples: List[Sample] = []
        self._next_due = 0

    def on_issue(self, warp, pc, opcode, active, cycle) -> None:
        if cycle < self._next_due:
            return
        self._next_due = cycle + self.interval
        gpu = self._gpu
        self.samples.append(
            Sample(
                cycle=cycle,
                resident_warps=gpu.active_warps,
                kde_occupied=gpu.distributor.occupied,
                agt_occupied=gpu.scheduler.agt.occupied,
                footprint_bytes=gpu.stats.footprint_bytes,
                pending_device_kernels=len(gpu.kmu.device_pending),
            )
        )

    # ------------------------------------------------------------------
    def series(self, field: str) -> List[int]:
        return [getattr(s, field) for s in self.samples]

    def peak(self, field: str) -> int:
        values = self.series(field)
        return max(values) if values else 0

    def resample(self, field: str, buckets: int = 40) -> List[float]:
        """Bucket the irregular series into ``buckets`` even time bins
        (mean per bin; empty bins carry the previous value forward)."""
        if not self.samples:
            return []
        start = self.samples[0].cycle
        end = self.samples[-1].cycle
        span = max(1, end - start)
        sums = [0.0] * buckets
        counts = [0] * buckets
        for sample in self.samples:
            idx = min(buckets - 1, (sample.cycle - start) * buckets // span)
            sums[idx] += getattr(sample, field)
            counts[idx] += 1
        result: List[float] = []
        previous = 0.0
        for total, count in zip(sums, counts):
            if count:
                previous = total / count
            result.append(previous)
        return result

    def sparkline(self, field: str, buckets: int = 40) -> str:
        """A terminal sparkline of the resampled series."""
        levels = " .:-=+*#%@"
        values = self.resample(field, buckets)
        if not values:
            return ""
        peak = max(values) or 1.0
        return "".join(
            levels[min(len(levels) - 1, int(v / peak * (len(levels) - 1)))]
            for v in values
        )
