"""Thread blocks (CTAs) resident on an SMX."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from ..config import WARP_SIZE
from .fast_warp import FastWarp
from .kernel import KernelFunction, LaunchDims, dims_total
from .vector_warp import VectorWarp
from .warp import Warp

if TYPE_CHECKING:  # pragma: no cover
    from .smx import SMX


class ThreadBlock:
    """One CTA: a set of warps plus shared memory and barrier state.

    ``kde_entry`` points back at the Kernel Distributor entry the block
    belongs to; ``age`` is the Aggregated Group Entry when the block is an
    *aggregated* TB (``None`` for native TBs).
    """

    __slots__ = (
        "gpu",
        "smx",
        "func",
        "grid_dims",
        "block_dims",
        "block_linear_index",
        "ctaid",
        "param_addr",
        "kde_entry",
        "age",
        "shared",
        "warps",
        "block_threads",
        "_alive_warps",
        "_barrier_arrivals",
        "san_uid",
    )

    def __init__(
        self,
        smx: "SMX",
        func: KernelFunction,
        grid_dims: LaunchDims,
        block_dims: LaunchDims,
        block_linear_index: int,
        param_addr: int,
        kde_entry,
        age,
        slots: List[int],
    ) -> None:
        self.gpu = smx.gpu
        self.smx = smx
        self.func = func
        self.grid_dims = grid_dims
        self.block_dims = block_dims
        self.block_linear_index = block_linear_index
        gx, gy, _gz = grid_dims
        self.ctaid = (
            block_linear_index % gx,
            (block_linear_index // gx) % gy,
            block_linear_index // (gx * gy),
        )
        self.param_addr = param_addr
        self.kde_entry = kde_entry
        self.age = age
        self.block_threads = dims_total(block_dims)
        self.shared = np.zeros(max(1, func.shared_words), dtype=np.int64)
        n_warps = (self.block_threads + WARP_SIZE - 1) // WARP_SIZE
        assert len(slots) == n_warps
        if self.gpu.vector_core:
            warp_cls = VectorWarp
        elif self.gpu.fast_core:
            warp_cls = FastWarp
        else:
            warp_cls = Warp
        self.warps: List[Warp] = [
            warp_cls(self, w, slots[w]) for w in range(n_warps)
        ]
        self._alive_warps = n_warps
        self._barrier_arrivals = 0
        #: Sanitizer block uid (0 = untracked; assigned in on_block_start).
        self.san_uid = 0

    # ------------------------------------------------------------------
    def warp_finished(self, warp: Warp, cycle: int) -> None:
        san = self.gpu.sanitizer
        if san is not None and self._barrier_arrivals:
            san.on_exit_during_barrier(self, warp, cycle)
        self._alive_warps -= 1
        self.smx.warp_retired(warp, cycle)
        if self._alive_warps == 0:
            self.smx.block_finished(self, cycle)
        elif self._barrier_arrivals and self._barrier_arrivals >= self._alive_warps:
            # A warp exiting can release a barrier the remaining warps hold.
            self._release_barrier(cycle)

    def arrive_barrier(self, warp: Warp, cycle: int) -> None:
        san = self.gpu.sanitizer
        if san is not None and self._alive_warps < len(self.warps):
            san.on_barrier_after_exit(self, warp, cycle)
        self._barrier_arrivals += 1
        if self._barrier_arrivals >= self._alive_warps:
            self._release_barrier(cycle)

    def _release_barrier(self, cycle: int) -> None:
        san = self.gpu.sanitizer
        if san is not None:
            san.on_barrier_release(self)
        latency = self.gpu.config.barrier_latency
        for warp in self.warps:
            if warp.at_barrier:
                warp.at_barrier = False
                warp.ready_cycle = cycle + latency
                self.smx.requeue_warp(warp)
        self._barrier_arrivals = 0

    @property
    def alive_warps(self) -> int:
        return self._alive_warps
