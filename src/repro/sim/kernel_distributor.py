"""The Kernel Distributor and its entries (KDE).

The Kernel Distributor holds the kernels ready for execution — at most 32
entries on the baseline (the maximum kernel-level concurrency, Section 2.2).
Under DTBL each entry additionally carries the NAGEI / LAGEI registers
that link the kernel's pending aggregated groups into a scheduling pool
(Section 4.2).
"""

from __future__ import annotations

from typing import List, Optional

from ..dtbl.agt import AggregatedGroupEntry
from ..errors import LaunchError
from .kernel import KernelFunction, LaunchDims, dims_total
from .stats import LaunchRecord


class KDEEntry:
    """One Kernel Distributor entry plus the DTBL extension registers."""

    __slots__ = (
        "index",
        "func",
        "grid_dims",
        "block_dims",
        "param_addr",
        "total_blocks",
        "next_block",
        "exe_blocks",
        "nagei",
        "lagei",
        "agg_exe_blocks",
        "marked",
        "ever_marked",
        "record",
        "stream_id",
    )

    def __init__(
        self,
        index: int,
        func: KernelFunction,
        grid_dims: LaunchDims,
        block_dims: LaunchDims,
        param_addr: int,
        record: LaunchRecord,
        stream_id: Optional[int],
    ) -> None:
        self.index = index
        self.func = func
        self.grid_dims = grid_dims
        self.block_dims = block_dims
        self.param_addr = param_addr
        self.total_blocks = dims_total(grid_dims)
        self.next_block = 0
        #: TBs distributed to SMXs and not yet completed (the ExeBL field).
        self.exe_blocks = 0
        #: Next aggregated group to schedule (NAGEI).
        self.nagei: Optional[AggregatedGroupEntry] = None
        #: Last aggregated group coalesced to this kernel (LAGEI).
        self.lagei: Optional[AggregatedGroupEntry] = None
        #: Aggregated TBs in execution across all groups of this kernel
        #: (kept as a separate counter because fully distributed groups are
        #: unlinked from the NAGEI chain while their TBs may still run).
        self.agg_exe_blocks = 0
        #: Whether the entry currently sits in the FCFS controller's queue.
        self.marked = False
        #: The FCFS controller's extra bit: has this entry been marked before?
        self.ever_marked = False
        self.record = record
        self.stream_id = stream_id

    # ------------------------------------------------------------------
    @property
    def native_fully_distributed(self) -> bool:
        return self.next_block >= self.total_blocks

    def pending_groups(self) -> int:
        """Number of linked groups not yet fully distributed (diagnostic)."""
        count = 0
        group = self.nagei
        while group is not None:
            if not group.fully_distributed:
                count += 1
            group = group.next
        return count

    @property
    def fully_distributed(self) -> bool:
        if not self.native_fully_distributed:
            return False
        group = self.nagei
        while group is not None:
            if not group.fully_distributed:
                return False
            group = group.next
        return True

    @property
    def completed(self) -> bool:
        """All TBs (native and aggregated) distributed and finished."""
        return (
            self.fully_distributed
            and self.exe_blocks == 0
            and self.agg_exe_blocks == 0
        )

    def append_group(self, age: AggregatedGroupEntry) -> None:
        """Link a new aggregated group at the tail (LAGEI update).

        NAGEI is updated only when the scheduling pool is currently empty —
        either this is the first group ever coalesced to the kernel, or all
        previously coalesced groups have already been distributed (the two
        scenarios of Section 4.2).
        """
        if self.lagei is not None:
            self.lagei.next = age
        self.lagei = age
        self.advance_nagei()
        if self.nagei is None:
            self.nagei = age

    def advance_nagei(self) -> None:
        """Drop fully distributed groups from the head of the pool."""
        while self.nagei is not None and self.nagei.fully_distributed:
            # Keep the chain intact for exe_blocks tracking via the group
            # objects themselves; NAGEI only tracks what remains to issue.
            self.nagei = self.nagei.next


class KernelDistributor:
    """Fixed pool of KDE entries (32 on the GK110 baseline)."""

    def __init__(self, num_entries: int) -> None:
        self.num_entries = num_entries
        self._entries: List[Optional[KDEEntry]] = [None] * num_entries
        self.occupied = 0
        self.peak_occupied = 0

    @property
    def has_free(self) -> bool:
        return self.occupied < self.num_entries

    def allocate(
        self,
        func: KernelFunction,
        grid_dims: LaunchDims,
        block_dims: LaunchDims,
        param_addr: int,
        record: LaunchRecord,
        stream_id: Optional[int],
    ) -> KDEEntry:
        for index, slot in enumerate(self._entries):
            if slot is None:
                entry = KDEEntry(
                    index, func, grid_dims, block_dims, param_addr, record, stream_id
                )
                self._entries[index] = entry
                self.occupied += 1
                if self.occupied > self.peak_occupied:
                    self.peak_occupied = self.occupied
                return entry
        raise LaunchError("Kernel Distributor is full")

    def free(self, entry: KDEEntry) -> None:
        assert self._entries[entry.index] is entry
        self._entries[entry.index] = None
        self.occupied -= 1

    def find_eligible(
        self, func: KernelFunction, block_dims: LaunchDims
    ) -> Optional[KDEEntry]:
        """Eligible-kernel search for TB coalescing (Section 4.2).

        Eligible kernels have the same entry PC (same kernel function) and
        the same thread-block configuration as the aggregated group.
        """
        for entry in self._entries:
            if (
                entry is not None
                and entry.func is func
                and entry.block_dims == block_dims
            ):
                return entry
        return None

    def active_entries(self) -> List[KDEEntry]:
        return [entry for entry in self._entries if entry is not None]
