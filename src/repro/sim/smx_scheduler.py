"""The SMX scheduler: FCFS kernel selection, TB distribution, and the DTBL
scheduling procedure of Section 4.2 / Fig. 5.

The scheduler owns the FCFS controller (the queue of *marked* Kernel
Distributor entries), distributes native and aggregated thread blocks to
SMXs with free resources, and processes aggregation operation commands:
eligible-kernel search, AGT allocation via the single-probe hash, the
NAGEI/LAGEI scheduling pool, and the fall-back to a device-kernel launch
when no eligible kernel exists.

The module also hosts :class:`GroupDispatcher`, the vector core's
cross-warp issue scheduler: at each visited cycle it tries to take *all*
due warps off the GPU-wide ready heap at once and execute them as
homogeneous SoA batches (see :mod:`repro.sim.vector_warp`), falling back
to the ordinary one-warp-at-a-time pop loop whenever the due set is not
provably groupable.
"""

from __future__ import annotations

import heapq
import operator
from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Sequence, Tuple

from ..config import SEGMENT_WORDS
from ..dtbl.agt import AggregatedGroupEntry, AggregatedGroupTable
from ..dtbl.aggregation import AggLaunchRequest
from .kernel import dims_total
from .kernel_distributor import KDEEntry
from .kmu import DeviceLaunchSpec
from .stats import LaunchKind, LaunchRecord
from .vector_warp import (
    execute_alu_batch,
    execute_control_batch,
    execute_mem_batch,
)

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU
    from .smx import SMX
    from .thread_block import ThreadBlock


class SMXScheduler:
    """FCFS controller + TB distribution + DTBL extension."""

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        self.fcfs: Deque[KDEEntry] = deque()
        self.agt = AggregatedGroupTable(gpu.config.agt_entries)
        self._distribute_scheduled = False
        #: Cycles with a pending gate-retry event (deduplicates the
        #: fetch-gate wake-ups the same way _distribute_scheduled
        #: deduplicates same-cycle passes; without this, every pass that
        #: sees a gated group stacks another retry at the same cycle and
        #: each retry grants a fresh per-SMX quota).
        self._gate_retries: set = set()
        self._smx_cursor = 0

    # ------------------------------------------------------------------
    # FCFS marking
    # ------------------------------------------------------------------
    def mark(self, entry: KDEEntry, cycle: int) -> None:
        """Queue a KDE entry for TB distribution (the FCFS 'marked' bit)."""
        assert not entry.marked
        entry.marked = True
        entry.ever_marked = True
        self.fcfs.append(entry)
        self.notify(cycle)

    def notify(self, cycle: int) -> None:
        """Request a distribution pass (deduplicated per cycle)."""
        if self._distribute_scheduled or not self.fcfs:
            return
        self._distribute_scheduled = True
        self._gpu.schedule_event(cycle, kind="distribute")

    def _run_distribute(self, cycle: int) -> None:
        self._distribute_scheduled = False
        self.distribute(cycle)

    def _make_gate_retry(self, when: int):
        def retry(at: int) -> None:
            self._gate_retries.discard(when)
            self.distribute(at)

        return retry

    # ------------------------------------------------------------------
    # TB distribution
    # ------------------------------------------------------------------
    def distribute(self, cycle: int) -> None:
        """Distribute up to one TB per SMX this cycle, FCFS over entries."""
        gpu = self._gpu
        quota = gpu.config.num_smx
        queue = self.fcfs
        gates: List[int] = []
        index = 0
        while quota > 0 and index < len(queue):
            entry = queue[index]
            while quota > 0:
                spec = self._next_tb(entry, cycle, gates)
                if spec is None:
                    break
                smx = self._find_smx(entry)
                if smx is None:
                    break
                self._place(entry, spec, smx, cycle)
                quota -= 1
            if entry.fully_distributed:
                self._unmark(entry, cycle)
                del queue[index]
                continue
            index += 1
        if quota == 0 and any(not e.fully_distributed for e in queue):
            self.notify(cycle + 1)
        if gates:
            when = min(gates)
            if when not in self._gate_retries:
                self._gate_retries.add(when)
                self._gpu.schedule_event(when, kind="gate_retry", payload=when)
        # When blocked purely by SMX capacity, on_block_complete re-notifies.

    def _next_tb(
        self, entry: KDEEntry, cycle: int, gates: List[int]
    ) -> Optional[Tuple[Optional[AggregatedGroupEntry], int]]:
        """Next distributable TB of ``entry``: (group-or-None, block index)."""
        if entry.next_block < entry.total_blocks:
            return (None, entry.next_block)
        entry.advance_nagei()
        group = entry.nagei
        if group is None:
            return None
        if not group.in_agt:
            # Group information lives in global memory: the scheduler must
            # fetch it before the group's TBs can be distributed; the cost
            # depends on current memory traffic (Section 4.3).
            if not group.fetch_issued:
                group.fetch_issued = True
                segment = group.param_addr // SEGMENT_WORDS
                group.gate_until = self._gpu.memsys.read_latency(segment, cycle)
            if group.gate_until is not None and group.gate_until > cycle:
                gates.append(group.gate_until)
                return None
        return (group, group.next_block)

    def _find_smx(self, entry: KDEEntry) -> Optional["SMX"]:
        smxs = self._gpu.smxs
        n = len(smxs)
        for step in range(n):
            smx = smxs[(self._smx_cursor + step) % n]
            if smx.can_accept(entry.func, entry.block_dims):
                self._smx_cursor = (self._smx_cursor + step + 1) % n
                return smx
        return None

    def _place(
        self,
        entry: KDEEntry,
        spec: Tuple[Optional[AggregatedGroupEntry], int],
        smx: "SMX",
        cycle: int,
    ) -> None:
        group, block_index = spec
        if group is None:
            grid_dims = entry.grid_dims
            param = entry.param_addr
            entry.next_block += 1
            entry.exe_blocks += 1
            record = entry.record
        else:
            grid_dims = group.agg_dims
            param = group.param_addr
            group.next_block += 1
            group.exe_blocks += 1
            entry.agg_exe_blocks += 1
            record = group.record
        if record.first_exec_cycle is None:
            record.first_exec_cycle = cycle
        smx.add_block(
            entry.func,
            grid_dims,
            entry.block_dims,
            block_index,
            param,
            entry,
            group,
            cycle,
        )
        if group is not None and group.fully_distributed:
            record.fully_distributed_cycle = cycle
            self._gpu.stats.release_footprint(record.pending_bytes)

    def _unmark(self, entry: KDEEntry, cycle: int) -> None:
        entry.marked = False
        record = entry.record
        if record.fully_distributed_cycle is None:
            record.fully_distributed_cycle = cycle
            if record.kind is LaunchKind.DEVICE_KERNEL:
                self._gpu.stats.release_footprint(record.pending_bytes)
        if entry.completed:
            self._release_entry(entry, cycle)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def on_block_complete(self, tb: "ThreadBlock", cycle: int) -> None:
        entry = tb.kde_entry
        group = tb.age
        if group is not None:
            group.exe_blocks -= 1
            entry.agg_exe_blocks -= 1
            if group.done:
                group.record.completed_cycle = cycle
                if group.in_agt:
                    self.agt.free(group)
        else:
            entry.exe_blocks -= 1
        if not entry.marked and entry.completed:
            self._release_entry(entry, cycle)
        # Freed SMX resources may unblock distribution.
        self.notify(cycle)

    def _release_entry(self, entry: KDEEntry, cycle: int) -> None:
        gpu = self._gpu
        entry.record.completed_cycle = cycle
        gpu.distributor.free(entry)
        gpu.stats.kernels_completed += 1
        gpu.kmu.host_queues.head_completed(entry.stream_id)
        gpu.kmu.try_dispatch(cycle)

    # ------------------------------------------------------------------
    # Aggregation operation command (Fig. 5)
    # ------------------------------------------------------------------
    def process_aggregation(
        self, requests: Sequence[AggLaunchRequest], cycle: int
    ) -> None:
        """Run the DTBL scheduling procedure for each launched group."""
        gpu = self._gpu
        stats = gpu.stats
        for req in requests:
            func = gpu.kernels[req.kernel_name]
            if gpu.config.dtbl_no_coalescing:
                # Section 4.3's alternative design point: every group is
                # independently scheduled from the KDE.
                entry = None
            else:
                entry = gpu.distributor.find_eligible(func, req.block_dims)
            param_bytes = gpu.runtime.param_bytes_for(req.param_addr)
            blocks = dims_total(req.agg_dims)
            threads = blocks * dims_total(req.block_dims)
            if entry is None:
                # No eligible kernel: launch the group as a device kernel.
                stats.agg_unmatched += 1
                record = LaunchRecord(
                    kind=LaunchKind.DEVICE_KERNEL,
                    kernel_name=req.kernel_name,
                    launch_cycle=cycle,
                    total_blocks=blocks,
                    total_threads=threads,
                    param_bytes=param_bytes,
                    record_bytes=gpu.config.cdp_pending_kernel_bytes,
                )
                stats.launches.append(record)
                stats.add_footprint(record.pending_bytes)
                gpu.kmu.enqueue_device(
                    DeviceLaunchSpec(
                        req.kernel_name,
                        req.agg_dims,
                        req.block_dims,
                        req.param_addr,
                        record,
                    )
                )
                continue
            stats.agg_matched += 1
            record = LaunchRecord(
                kind=LaunchKind.AGG_GROUP,
                kernel_name=req.kernel_name,
                launch_cycle=cycle,
                total_blocks=blocks,
                total_threads=threads,
                param_bytes=param_bytes,
                record_bytes=gpu.config.dtbl_pending_group_bytes,
            )
            stats.launches.append(record)
            stats.add_footprint(record.pending_bytes)
            age = AggregatedGroupEntry(req.agg_dims, req.param_addr, record)
            if self.agt.try_alloc(req.hw_tid, age):
                stats.agt_hash_hits += 1
            else:
                stats.agt_hash_spills += 1
            entry.append_group(age)
            if not entry.marked:
                self.mark(entry, cycle)
            else:
                self.notify(cycle)


#: Global time order for grouped memory accesses: ascending issue
#: cycle, ties in pop order.
_MEM_ORDER = operator.itemgetter(0, 1)
_START_ORDER = operator.itemgetter(0)

#: Issue count at which a successful dispatch clearly beats the pop
#: loop's per-instruction path.  An attempt costs on the order of thirty
#: microseconds of collection, planning and requeueing, and saves at
#: most a microsecond or so per batched instruction, so small batches —
#: even exact, "successful" ones — are net losses.
_WIN_ISSUES = 32
_BACKOFF_MAX = 256


class GroupDispatcher:
    """Cross-warp SoA issue scheduler for the vector core.

    Called by :meth:`GPU._run_fast <repro.sim.gpu.GPU._run_fast>` at the
    top of every visited cycle (after the event drain): pop *all* due
    entries off the GPU-wide ready heap, and if the whole due set can be
    executed as homogeneous warp groups without perturbing the reference
    interleaving, do so and return ``True``; otherwise push the entries
    back unchanged and let the ordinary pop loop run.

    Bit-exactness argument, in the heap's own terms (entries are
    ``(sched, smx_id, ready, age, warp)``; see ``_run_fast``):

    * **All-or-nothing.**  Every due entry must map to a
      :class:`~repro.sim.vector_warp.VectorRow`; any rowless warp
      (EXIT, BAR, launches, local memory) bails the whole attempt.
    * **Cohorts.**  Within an SMX the due warps, taken in pop order
      (the per-SMX ``(ready, age)`` GTO key), issue in cohorts of
      ``issue_width``: cohort *k* starts at ``cycle + k`` — exactly the
      budget-deferral pattern the pop loop produces, because a deferred
      entry keeps its original ``ready`` and therefore sorts ahead of
      any warp that becomes ready later.
    * **Two execution tiers.**  An SMX whose due warps all sit on the
      same multi-op span row runs it *fused* (the whole span in one
      batch) when the per-op minimum latency exceeds the cohort lag
      (so the span's interleaved per-round issue cycles never collide
      across cohorts and never exceed the issue budget) and the span's
      last issue stays inside the isolation bound.  Every other SMX —
      mixed pcs, over-long spans, single-op rows — degrades to each
      member's single-op ``head`` row: one issue per warp at its
      cohort cycle, which is literally what the pop loop does when it
      cannot fuse.
    * **Isolation.**  Every group issue cycle must fall strictly
      before the next actor (event-queue head, post-pop heap head, and
      the watchdog horizon), and — across the *whole* plan — the
      earliest re-ready of any grouped warp must fall strictly after
      the group's last issue.  Otherwise a re-readied warp could act
      through the pop loop (issue, schedule events, trigger a
      distribute) while later group issues are still notionally in
      flight.  When the global bound fails, fused spans (the long
      pole) demote to their heads and the bound is re-checked once.
      Grouped rows themselves never schedule events, finish warps, or
      touch barriers, so no new actor can appear mid-group.
    * **Memory order.**  Register-private work (ALU spans, control
      ops) commutes across warps and executes batch-major; memory rows
      execute in global time order — ascending issue cycle, ties in
      pop order (which is the reference's same-cycle issue order,
      ``(sched, smx_id, ready, age)``) — because DRAM bank/row state
      and the L2 LRU are order-sensitive.

    Any condition failing means a plain pushback: entry tuples are
    reused verbatim, so the heap is restored exactly (minus lazily
    deleted stale entries, which the pop loop would drop anyway).
    """

    __slots__ = (
        "_gpu", "_events", "_gheap", "_width", "_alu", "_sfu",
        "_l2_hit", "_stats", "_memsys", "_tracer", "_skip", "_backoff",
    )

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        self._events = gpu._events
        self._gheap = gpu._gheap
        self._width = gpu.config.issue_width
        self._alu = gpu.config.alu_latency
        self._sfu = gpu.config.sfu_latency
        self._l2_hit = gpu.config.l2_hit_latency
        self._stats = gpu.stats
        self._memsys = gpu.memsys
        self._tracer = gpu.tracer
        # Adaptive gate: when attempts keep failing (pushback) or barely
        # pay for themselves, skip the next `_backoff` opportunities and
        # double the backoff; any attempt that issues a worthwhile batch
        # resets it.  Skipping a dispatch opportunity is always sound —
        # the pop loop is the exact baseline — so this only shapes
        # *where* the dispatcher spends its overhead, never results.
        self._skip = 0
        self._backoff = 1

    def _min_lat(self, row) -> int:
        sel = row.latsel
        if sel == "alu":
            return self._alu
        if sel == "sfu":
            return self._sfu
        if sel == "min":
            return self._alu if self._alu < self._sfu else self._sfu
        if sel == "load":
            return self._l2_hit
        return 1  # "one": JOIN/NOP re-ready at cycle + 1

    def _pushback(self, popped) -> bool:
        gheap = self._gheap
        for entry in popped:
            heapq.heappush(gheap, entry)
        self._skip = self._backoff
        if self._backoff < _BACKOFF_MAX:
            self._backoff <<= 1
        return False

    def _settle(self, issued: int) -> None:
        """Feed the adaptive gate after a successful dispatch."""
        if issued >= _WIN_ISSUES:
            self._backoff = 1
            self._skip = 0
        else:
            # Exact but too small to pay for the attempt: back off just
            # like a failure so losing phases decay to a ~0.4% duty
            # cycle while large-group phases restore full rate.
            self._skip = self._backoff
            if self._backoff < _BACKOFF_MAX:
                self._backoff <<= 1

    def try_dispatch(self, cycle: int, horizon: int) -> bool:
        """Group-execute the entire due set at ``cycle``, or do nothing."""
        if self._skip:
            self._skip -= 1
            return False
        gheap = self._gheap
        heappop = heapq.heappop
        popped: list = []
        entries: list = []
        seen: set = set()
        while gheap:
            entry = gheap[0]
            warp = entry[4]
            if warp.finished or warp.at_barrier or entry[2] != warp.ready_cycle:
                heappop(gheap)  # stale (lazy deletion)
                continue
            if entry[0] > cycle:
                break
            wid = id(warp)
            if wid in seen:
                # Duplicate live entry for one warp (e.g. safety-net
                # re-arm): only sequential execution staleness-filters
                # the second one correctly.  Left in the heap.
                return self._pushback(popped)
            # Reconvergence pops are idempotent: the pop loop redoes this
            # check on pushback.
            stack = warp.stack
            frame = stack[-1]
            while len(stack) > 1 and frame[1] >= 0 and frame[0] == frame[1]:
                stack.pop()
                frame = stack[-1]
            pc = frame[0]
            vt = warp._vtable
            row = vt[pc] if 0 <= pc < len(vt) else None
            if row is None:
                # Ungroupable op (EXIT, BAR, launch, local memory ...);
                # checked before popping, so a rowless warp at the heap
                # head costs only a peek.
                return self._pushback(popped)
            heappop(gheap)
            popped.append(entry)
            seen.add(wid)
            entries.append((entry[1], warp, frame, row))
        if len(entries) < 2:
            return self._pushback(popped)

        # Next-actor bound: events are drained through ``cycle`` and
        # every due heap entry was just popped, so this is > ``cycle``.
        # Grouped rows never schedule events, push heap entries, finish
        # warps or touch barriers, so the bound stays valid for as long
        # as the group keeps executing.
        limit = horizon
        events = self._events
        if events and events[0][0] < limit:
            limit = events[0][0]
        if gheap and gheap[0][0] < limit:
            limit = gheap[0][0]

        # Globally homogeneous due set (every warp on the same row —
        # the dominant lockstep pattern): march the whole group through
        # consecutive rows in one dispatch.
        row0 = entries[0][3]
        for e in entries:
            if e[3] is not row0:
                break
        else:
            return self._lockstep(cycle, limit, entries, popped)

        # Per-SMX member lists in pop order (= per-SMX cohort order);
        # the global pop index rides along for memory ordering.
        by_smx: dict = {}
        for gi, (smx_id, warp, frame, row) in enumerate(entries):
            lst = by_smx.get(smx_id)
            if lst is None:
                by_smx[smx_id] = lst = []
            lst.append((warp, frame, row, gi))

        # Tier choice per SMX, plus the global bounds: ``max_li`` is the
        # plan's last issue cycle and ``min_rr`` the earliest re-ready,
        # both as offsets from ``cycle``.
        width = self._width
        alu = self._alu
        sfu = self._sfu
        min_lat = self._min_lat
        plans: list = []  # [smx_id, members, lag, fused_row_or_None, heads_rr]
        max_li = 0
        min_rr = None
        n_fused = 0
        for smx_id, members in by_smx.items():
            lag = (len(members) - 1) // width
            if cycle + lag >= limit:
                return self._pushback(popped)
            row0 = members[0][2]
            fused = None
            if row0.length > 1 and (lag == 0 or lag < min_lat(row0)):
                for m in members:
                    if m[2] is not row0:
                        break
                else:
                    duration = row0.n_alu * alu + row0.n_sfu * sfu
                    tail = sfu if row0.sfu_flags[-1] else alu
                    if cycle + lag + duration - tail < limit:
                        fused = row0
            if fused is not None:
                n_fused += 1
                heads_rr = min_lat(row0.head)
                li = lag + duration - tail
                rr = duration
            else:
                heads_rr = min(min_lat(m[2].head) for m in members)
                li = lag
                rr = heads_rr
            if li > max_li:
                max_li = li
            if min_rr is None or rr < min_rr:
                min_rr = rr
            plans.append([smx_id, members, lag, fused, heads_rr])

        if min_rr <= max_li:
            # A grouped warp would re-ready at or before the plan's last
            # issue and could then act through the pop loop mid-plan.
            # Fused spans are the long pole: demote them all to heads
            # (the span's smallest per-op latency bounds its head's, so
            # the lag test still holds) and re-check the bound once.
            if n_fused == 0:
                return self._pushback(popped)
            max_li = 0
            min_rr = None
            for plan in plans:
                plan[3] = None
                lag = plan[2]
                rr = plan[4]
                if lag > max_li:
                    max_li = lag
                if min_rr is None or rr < min_rr:
                    min_rr = rr
            if min_rr <= max_li:
                return self._pushback(popped)

        # Build per-row batches.  Members are ``(start, smx_id, warp,
        # frame)``; memory rows carry the pop index too and run last in
        # global time order.
        issued = 0
        lanes = 0
        batches: dict = {}
        order: list = []
        mem_items: list = []
        for smx_id, members, lag, fused, _heads_rr in plans:
            for k, (warp, frame, row, gi) in enumerate(members):
                if fused is None:
                    row = row.head
                start = cycle + k // width
                if row.kind == 2:
                    mem_items.append((start, gi, row, smx_id, warp, frame))
                    issued += 1
                    lanes += frame[3]
                    continue
                batch = batches.get(id(row))
                if batch is None:
                    batches[id(row)] = batch = (row, [])
                    order.append(batch)
                batch[1].append((start, smx_id, warp, frame))
                issued += row.length
                lanes += row.length * frame[3]

        tracer = self._tracer
        for row, members in order:
            if tracer is not None:
                tracer.on_group(
                    [m[2] for m in members], row.start, row,
                    [m[0] for m in members], [m[3][3] for m in members],
                )
            if row.kind == 1:
                execute_alu_batch(row, members, alu, sfu)
            else:
                execute_control_batch(row, members)
        if mem_items:
            mem_items.sort(key=_MEM_ORDER)
            row0 = mem_items[0][2]
            if tracer is not None:
                for start, _gi, row, _smx_id, warp, frame in mem_items:
                    tracer.on_group([warp], row.start, row, [start], [frame[3]])
            for m in mem_items:
                if m[2] is not row0:
                    # Mixed memory rows: scalar closures, already in
                    # global time order.
                    for start, _gi, row, _smx_id, warp, frame in mem_items:
                        if not row.runs[0](warp, frame, start):
                            frame[0] = row.start + 1
                    break
            else:
                execute_mem_batch(
                    row0,
                    [(m[0], m[3], m[4], m[5]) for m in mem_items],
                    self._memsys,
                )

        stats = self._stats
        stats.issued_instructions += issued
        stats.active_lane_sum += lanes

        # Requeue: every grouped op leaves its warp runnable (EXIT and
        # BAR never have rows), and GTO never rewrites ages.
        heappush = heapq.heappush
        for smx_id, members, lag, fused, _heads_rr in plans:
            for warp, frame, row, gi in members:
                ready = warp.ready_cycle
                heappush(gheap, (ready, smx_id, ready, warp.age, warp))
        self._settle(issued)
        return True

    def _lockstep(self, cycle: int, limit: int, entries, popped) -> bool:
        """March a globally homogeneous group through consecutive rows.

        Every member sits on the same :class:`VectorRow`, so each
        iteration is one valid dispatch of the whole due set: member
        *k* of an SMX issues at ``c + k//width`` (the cohort stagger),
        and a uniform re-ready distance reproduces the same stagger at
        ``c + delta`` — exactly the schedule the pop loop would produce
        by popping the staggered cohorts cycle by cycle.  The loop
        stops when the pcs diverge, the re-ready distances differ
        (e.g. a load mixing L2 hits and misses), the next pc has no
        row, or the isolation bound would be crossed; the group then
        requeues at its current readies.  ``limit`` stays valid
        throughout because grouped rows never create new actors.
        """
        width = self._width
        alu = self._alu
        sfu = self._sfu
        min_lat = self._min_lat
        # Cohort offsets per member, in pop order.
        offs: list = []
        counts: dict = {}
        lag = 0
        for smx_id, _warp, _frame, _row in entries:
            k = counts.get(smx_id, 0)
            counts[smx_id] = k + 1
            o = k // width
            offs.append(o)
            if o > lag:
                lag = o
        row = entries[0][3]
        vt = entries[0][1]._vtable
        warps = [e[1] for e in entries]
        smx_ids = [e[0] for e in entries]
        frames = [e[2] for e in entries]
        n = len(entries)
        rng = range(n)
        tracer = self._tracer
        memsys = self._memsys
        issued = 0
        lanes = 0
        c = cycle
        progressed = False
        while True:
            if c + lag >= limit or (lag and lag >= min_lat(row.head)):
                break
            exec_row = row
            if row.length > 1:
                ml = min_lat(row)
                duration = row.n_alu * alu + row.n_sfu * sfu
                tail = sfu if row.sfu_flags[-1] else alu
                if (lag == 0 or lag < ml) and c + lag + duration - tail < limit:
                    pass  # fused: the whole span in one batch
                else:
                    exec_row = row.head
            members = [
                (c + offs[i], smx_ids[i], warps[i], frames[i]) for i in rng
            ]
            length = exec_row.length
            issued += length * n
            actives = [f[3] for f in frames]
            lanes += length * sum(actives)
            if tracer is not None:
                tracer.on_group(
                    warps, exec_row.start, exec_row,
                    [m[0] for m in members], actives,
                )
            if exec_row.kind == 1:
                execute_alu_batch(exec_row, members, alu, sfu)
            elif exec_row.kind == 3:
                execute_control_batch(exec_row, members)
            else:
                if lag:
                    # Later cohorts of an earlier SMX issue after the
                    # first cohorts of later SMXs: restore global time
                    # order (stable, so ties keep pop order).
                    members.sort(key=_START_ORDER)
                execute_mem_batch(exec_row, members, memsys)
            progressed = True
            # Re-ready uniformity, reconvergence pops, pc homogeneity.
            delta = warps[0].ready_cycle - c - offs[0]
            go = True
            pc0 = -1
            for i in rng:
                warp = warps[i]
                if warp.ready_cycle - c - offs[i] != delta:
                    go = False
                    break
                stack = warp.stack
                frame = stack[-1]
                while len(stack) > 1 and frame[1] >= 0 and frame[0] == frame[1]:
                    stack.pop()
                    frame = stack[-1]
                frames[i] = frame
                if i:
                    if frame[0] != pc0:
                        go = False
                        break
                else:
                    pc0 = frame[0]
            if not go:
                break
            row = vt[pc0] if 0 <= pc0 < len(vt) else None
            if row is None:
                break
            c += delta

        if not progressed:
            return self._pushback(popped)
        stats = self._stats
        stats.issued_instructions += issued
        stats.active_lane_sum += lanes
        gheap = self._gheap
        heappush = heapq.heappush
        for i in rng:
            warp = warps[i]
            ready = warp.ready_cycle
            heappush(gheap, (ready, smx_ids[i], ready, warp.age, warp))
        self._settle(issued)
        return True
