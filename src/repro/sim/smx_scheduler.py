"""The SMX scheduler: FCFS kernel selection, TB distribution, and the DTBL
scheduling procedure of Section 4.2 / Fig. 5.

The scheduler owns the FCFS controller (the queue of *marked* Kernel
Distributor entries), distributes native and aggregated thread blocks to
SMXs with free resources, and processes aggregation operation commands:
eligible-kernel search, AGT allocation via the single-probe hash, the
NAGEI/LAGEI scheduling pool, and the fall-back to a device-kernel launch
when no eligible kernel exists.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Sequence, Tuple

from ..config import SEGMENT_WORDS
from ..dtbl.agt import AggregatedGroupEntry, AggregatedGroupTable
from ..dtbl.aggregation import AggLaunchRequest
from .kernel import dims_total
from .kernel_distributor import KDEEntry
from .kmu import DeviceLaunchSpec
from .stats import LaunchKind, LaunchRecord

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU
    from .smx import SMX
    from .thread_block import ThreadBlock


class SMXScheduler:
    """FCFS controller + TB distribution + DTBL extension."""

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        self.fcfs: Deque[KDEEntry] = deque()
        self.agt = AggregatedGroupTable(gpu.config.agt_entries)
        self._distribute_scheduled = False
        #: Cycles with a pending gate-retry event (deduplicates the
        #: fetch-gate wake-ups the same way _distribute_scheduled
        #: deduplicates same-cycle passes; without this, every pass that
        #: sees a gated group stacks another retry at the same cycle and
        #: each retry grants a fresh per-SMX quota).
        self._gate_retries: set = set()
        self._smx_cursor = 0

    # ------------------------------------------------------------------
    # FCFS marking
    # ------------------------------------------------------------------
    def mark(self, entry: KDEEntry, cycle: int) -> None:
        """Queue a KDE entry for TB distribution (the FCFS 'marked' bit)."""
        assert not entry.marked
        entry.marked = True
        entry.ever_marked = True
        self.fcfs.append(entry)
        self.notify(cycle)

    def notify(self, cycle: int) -> None:
        """Request a distribution pass (deduplicated per cycle)."""
        if self._distribute_scheduled or not self.fcfs:
            return
        self._distribute_scheduled = True
        self._gpu.schedule_event(cycle, kind="distribute")

    def _run_distribute(self, cycle: int) -> None:
        self._distribute_scheduled = False
        self.distribute(cycle)

    def _make_gate_retry(self, when: int):
        def retry(at: int) -> None:
            self._gate_retries.discard(when)
            self.distribute(at)

        return retry

    # ------------------------------------------------------------------
    # TB distribution
    # ------------------------------------------------------------------
    def distribute(self, cycle: int) -> None:
        """Distribute up to one TB per SMX this cycle, FCFS over entries."""
        gpu = self._gpu
        quota = gpu.config.num_smx
        queue = self.fcfs
        gates: List[int] = []
        index = 0
        while quota > 0 and index < len(queue):
            entry = queue[index]
            while quota > 0:
                spec = self._next_tb(entry, cycle, gates)
                if spec is None:
                    break
                smx = self._find_smx(entry)
                if smx is None:
                    break
                self._place(entry, spec, smx, cycle)
                quota -= 1
            if entry.fully_distributed:
                self._unmark(entry, cycle)
                del queue[index]
                continue
            index += 1
        if quota == 0 and any(not e.fully_distributed for e in queue):
            self.notify(cycle + 1)
        if gates:
            when = min(gates)
            if when not in self._gate_retries:
                self._gate_retries.add(when)
                self._gpu.schedule_event(when, kind="gate_retry", payload=when)
        # When blocked purely by SMX capacity, on_block_complete re-notifies.

    def _next_tb(
        self, entry: KDEEntry, cycle: int, gates: List[int]
    ) -> Optional[Tuple[Optional[AggregatedGroupEntry], int]]:
        """Next distributable TB of ``entry``: (group-or-None, block index)."""
        if entry.next_block < entry.total_blocks:
            return (None, entry.next_block)
        entry.advance_nagei()
        group = entry.nagei
        if group is None:
            return None
        if not group.in_agt:
            # Group information lives in global memory: the scheduler must
            # fetch it before the group's TBs can be distributed; the cost
            # depends on current memory traffic (Section 4.3).
            if not group.fetch_issued:
                group.fetch_issued = True
                segment = group.param_addr // SEGMENT_WORDS
                group.gate_until = self._gpu.memsys.read_latency(segment, cycle)
            if group.gate_until is not None and group.gate_until > cycle:
                gates.append(group.gate_until)
                return None
        return (group, group.next_block)

    def _find_smx(self, entry: KDEEntry) -> Optional["SMX"]:
        smxs = self._gpu.smxs
        n = len(smxs)
        for step in range(n):
            smx = smxs[(self._smx_cursor + step) % n]
            if smx.can_accept(entry.func, entry.block_dims):
                self._smx_cursor = (self._smx_cursor + step + 1) % n
                return smx
        return None

    def _place(
        self,
        entry: KDEEntry,
        spec: Tuple[Optional[AggregatedGroupEntry], int],
        smx: "SMX",
        cycle: int,
    ) -> None:
        group, block_index = spec
        if group is None:
            grid_dims = entry.grid_dims
            param = entry.param_addr
            entry.next_block += 1
            entry.exe_blocks += 1
            record = entry.record
        else:
            grid_dims = group.agg_dims
            param = group.param_addr
            group.next_block += 1
            group.exe_blocks += 1
            entry.agg_exe_blocks += 1
            record = group.record
        if record.first_exec_cycle is None:
            record.first_exec_cycle = cycle
        smx.add_block(
            entry.func,
            grid_dims,
            entry.block_dims,
            block_index,
            param,
            entry,
            group,
            cycle,
        )
        if group is not None and group.fully_distributed:
            record.fully_distributed_cycle = cycle
            self._gpu.stats.release_footprint(record.pending_bytes)

    def _unmark(self, entry: KDEEntry, cycle: int) -> None:
        entry.marked = False
        record = entry.record
        if record.fully_distributed_cycle is None:
            record.fully_distributed_cycle = cycle
            if record.kind is LaunchKind.DEVICE_KERNEL:
                self._gpu.stats.release_footprint(record.pending_bytes)
        if entry.completed:
            self._release_entry(entry, cycle)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def on_block_complete(self, tb: "ThreadBlock", cycle: int) -> None:
        entry = tb.kde_entry
        group = tb.age
        if group is not None:
            group.exe_blocks -= 1
            entry.agg_exe_blocks -= 1
            if group.done:
                group.record.completed_cycle = cycle
                if group.in_agt:
                    self.agt.free(group)
        else:
            entry.exe_blocks -= 1
        if not entry.marked and entry.completed:
            self._release_entry(entry, cycle)
        # Freed SMX resources may unblock distribution.
        self.notify(cycle)

    def _release_entry(self, entry: KDEEntry, cycle: int) -> None:
        gpu = self._gpu
        entry.record.completed_cycle = cycle
        gpu.distributor.free(entry)
        gpu.stats.kernels_completed += 1
        gpu.kmu.host_queues.head_completed(entry.stream_id)
        gpu.kmu.try_dispatch(cycle)

    # ------------------------------------------------------------------
    # Aggregation operation command (Fig. 5)
    # ------------------------------------------------------------------
    def process_aggregation(
        self, requests: Sequence[AggLaunchRequest], cycle: int
    ) -> None:
        """Run the DTBL scheduling procedure for each launched group."""
        gpu = self._gpu
        stats = gpu.stats
        for req in requests:
            func = gpu.kernels[req.kernel_name]
            if gpu.config.dtbl_no_coalescing:
                # Section 4.3's alternative design point: every group is
                # independently scheduled from the KDE.
                entry = None
            else:
                entry = gpu.distributor.find_eligible(func, req.block_dims)
            param_bytes = gpu.runtime.param_bytes_for(req.param_addr)
            blocks = dims_total(req.agg_dims)
            threads = blocks * dims_total(req.block_dims)
            if entry is None:
                # No eligible kernel: launch the group as a device kernel.
                stats.agg_unmatched += 1
                record = LaunchRecord(
                    kind=LaunchKind.DEVICE_KERNEL,
                    kernel_name=req.kernel_name,
                    launch_cycle=cycle,
                    total_blocks=blocks,
                    total_threads=threads,
                    param_bytes=param_bytes,
                    record_bytes=gpu.config.cdp_pending_kernel_bytes,
                )
                stats.launches.append(record)
                stats.add_footprint(record.pending_bytes)
                gpu.kmu.enqueue_device(
                    DeviceLaunchSpec(
                        req.kernel_name,
                        req.agg_dims,
                        req.block_dims,
                        req.param_addr,
                        record,
                    )
                )
                continue
            stats.agg_matched += 1
            record = LaunchRecord(
                kind=LaunchKind.AGG_GROUP,
                kernel_name=req.kernel_name,
                launch_cycle=cycle,
                total_blocks=blocks,
                total_threads=threads,
                param_bytes=param_bytes,
                record_bytes=gpu.config.dtbl_pending_group_bytes,
            )
            stats.launches.append(record)
            stats.add_footprint(record.pending_bytes)
            age = AggregatedGroupEntry(req.agg_dims, req.param_addr, record)
            if self.agt.try_alloc(req.hw_tid, age):
                stats.agt_hash_hits += 1
            else:
                stats.agt_hash_spills += 1
            entry.append_group(age)
            if not entry.marked:
                self.mark(entry, cycle)
            else:
                self.notify(cycle)
