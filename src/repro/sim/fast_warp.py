"""The fast execution core's warp interpreter.

:class:`FastWarp` is a drop-in :class:`~repro.sim.warp.Warp` subclass used
when ``GPUConfig.core`` resolves to ``"fast"`` (the default) and extended
by the SoA vector core (``core="vector"``).  It executes the same
instruction semantics as the reference interpreter — bit-for-bit on the
architectural state and cycle-for-cycle on the timing model — but removes
the per-step interpretation overhead three ways:

* **Pre-decoded instruction kernels.**  Each program is decoded once into
  a table of per-instruction closures (cached on the
  :class:`~repro.isa.program.Program`); operand banks, immediates and
  latency classes are resolved at decode time instead of on every issue.
* **Extended PDOM frames.**  Stack frames carry ``[pc, reconv_pc, mask,
  active_count, full_flag]`` so the active-lane count (needed for the
  warp-activity statistic on every issue) and the common all-32-lanes case
  are O(1) instead of a ``count_nonzero`` per step.  Mask arrays are never
  mutated in place, so the cached count is exact by construction.
* **Vectorized hot paths.**  Full-mask ALU ops use in-place ufunc forms
  (``out=`` / ``where=``); global loads/stores generate lane addresses in
  one vector op and feed segment sets to
  :func:`repro.memory.coalescing.coalesce_address_list`; address-disjoint
  atomics execute as gather/compute/scatter instead of a per-lane loop.
* **Superblock fusion.**  Decode also discovers maximal straight-line
  regions of ALU-class instructions (no branches, barriers, memory ops,
  or reconvergence points inside — :mod:`repro.isa.regions`) and a warp
  executing with a full mask inside an :meth:`SMX.burst
  <repro.sim.smx.SMX.burst>` window runs a whole region in one call
  (:meth:`FastWarp.step_window`), charging the exact per-instruction
  cycles and stats of unfused execution.  Divergent entry (partial
  mask), ``sanitize=True`` and the non-burst issue path all fall back to
  per-instruction dispatch.

Anything rare (shared/local memory, shuffles, votes, device-runtime calls,
atomics with intra-warp address conflicts, immediate-base memory ops)
delegates to the inherited reference handler, which keeps the two cores
trivially identical where speed does not matter.

Stat-exactness invariants worth keeping in mind when editing:

* ``coalesce_address_list`` must produce segments in ascending order —
  the same order ``np.unique`` gives the reference core — because DRAM
  bank/row state and the L2's LRU depend on access order.
* The reference serializes conflicting atomic lanes in lane order; the
  vectorized path therefore only handles all-distinct address sets.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from ..config import SEGMENT_WORDS, WARP_SIZE
from ..errors import ExecutionError
from ..isa.instructions import Bank, Cmp, Opcode, Reg, Special
from ..isa.regions import straight_line_regions
from ..memory.coalescing import coalesce_address_list
from .warp import _CMP_FUNCS, _DISPATCH, Warp

# ----------------------------------------------------------------------
# Shared warp geometry
#
# Lane geometry depends only on (block_dims, block_threads, warp_index),
# so warps of equally-shaped blocks share one set of read-only arrays
# instead of recomputing five vector ops per warp construction.  The
# cache is a small LRU: long sweeps over many block shapes (the DTBL
# workloads launch blocks sized by each DFP) must not grow it without
# bound.
# ----------------------------------------------------------------------
_GEOM_CACHE_LIMIT = 256
_GEOM_CACHE: "OrderedDict[Tuple[int, int, int, int], tuple]" = OrderedDict()


def _geometry(bx: int, by: int, threads: int, warp_index: int) -> tuple:
    key = (bx, by, threads, warp_index)
    cached = _GEOM_CACHE.get(key)
    if cached is None:
        linear = warp_index * WARP_SIZE + np.arange(WARP_SIZE, dtype=np.int64)
        init_mask = linear < threads
        clamped = np.minimum(linear, threads - 1)
        tid_x = clamped % bx
        tid_y = (clamped // bx) % by
        tid_z = clamped // (bx * by)
        active = int(np.count_nonzero(init_mask))
        for arr in (init_mask, clamped, tid_x, tid_y, tid_z):
            arr.setflags(write=False)
        cached = (init_mask, tid_x, tid_y, tid_z, clamped, active)
        _GEOM_CACHE[key] = cached
        if len(_GEOM_CACHE) > _GEOM_CACHE_LIMIT:
            _GEOM_CACHE.popitem(last=False)
    else:
        _GEOM_CACHE.move_to_end(key)
    return cached


# ----------------------------------------------------------------------
# Operand encoding
# ----------------------------------------------------------------------
def _enc_i(operand):
    """Integer operand -> (reg_index, imm); reg_index -1 means immediate.

    Returns None when the immediate is not an integer (the reference
    core's unsafe cast then defines the semantics; delegate to it).
    Mirrors ``Warp._val_i``: any Reg reads the int bank.
    """
    if type(operand) is Reg:
        return operand.idx, 0
    value = operand.value
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        return None
    return -1, int(value)


def _enc_f(operand):
    """Float operand -> (kind, reg_index, imm) with kind 0=float reg,
    1=int reg (converted), 2=immediate.  Mirrors ``Warp._val_f``."""
    if type(operand) is Reg:
        if operand.bank == Bank.FLT:
            return 0, operand.idx, 0.0
        return 1, operand.idx, 0.0
    return 2, -1, operand.value


def _fval(w, kind, idx, imm):
    if kind == 0:
        return w.regs_f[idx]
    if kind == 1:
        return w.regs_i[idx].astype(np.float64)
    return imm


# ----------------------------------------------------------------------
# Shared timing helper for global-memory instructions
# ----------------------------------------------------------------------
def _global_timing(w, alist: list, is_write: bool, cycle: int, lo: int, hi: int) -> None:
    # Small-range fast path: when the warp's addresses span fewer than
    # SEGMENT_WORDS words they touch at most two adjacent segments, and
    # both endpoints are real addresses, so the segment list is exactly
    # [lo//S] or [lo//S, hi//S] — no set comprehension needed.
    if 0 <= hi - lo < SEGMENT_WORDS:
        s0 = lo // SEGMENT_WORDS
        s1 = hi // SEGMENT_WORDS
        segments = [s0] if s0 == s1 else [s0, s1]
    else:
        segments = coalesce_address_list(alist)
    cstats = w._cstats
    cstats.warp_accesses += 1
    cstats.transactions += len(segments)
    cstats.lanes += len(alist)
    cstats.histogram[len(segments)] += 1
    completion = w._mem_access(segments, is_write, cycle)
    if is_write:
        w.ready_cycle = cycle + w._alu_lat
    else:
        w.ready_cycle = completion


def _lane_addrs(w, frame, base_idx: int, off: int):
    """Active-lane global addresses (register base), bounds-checked.

    Returns ``(addrs, alist, lo, hi)``: the address ndarray (for the
    gather or scatter itself), its Python-int list, and the address
    range — one ``tolist()`` plus two C-level ``min``/``max`` calls
    beat two numpy reductions on 32-element arrays, and the bounds feed
    :func:`_global_timing`'s small-range segment fast path.  ``(0, -1)``
    signals an empty lane set."""
    base = w.regs_i[base_idx]
    if not frame[4]:
        base = base[frame[2]]
    addrs = base + off if off else base
    alist = addrs.tolist()
    if alist:
        lo = min(alist)
        hi = max(alist)
        if lo < 0 or hi >= w._mem_size:
            raise ExecutionError(
                f"kernel {w.tb.func.name!r}: global access out of range "
                f"(addr {lo}..{hi}, mem size {w._mem_size})"
            )
    else:
        lo, hi = 0, -1
    return addrs, alist, lo, hi


# ----------------------------------------------------------------------
# Instruction-kernel builders.  Each returns a closure run(w, frame,
# cycle) -> bool (True iff the pc was updated), or None to delegate to
# the reference handler.
# ----------------------------------------------------------------------
_INT_BIN_UFUNCS = {
    Opcode.IADD: np.add,
    Opcode.ISUB: np.subtract,
    Opcode.IMUL: np.multiply,
    Opcode.IMIN: np.minimum,
    Opcode.IMAX: np.maximum,
    Opcode.IAND: np.bitwise_and,
    Opcode.IOR: np.bitwise_or,
    Opcode.IXOR: np.bitwise_xor,
    Opcode.ISHL: np.left_shift,
    Opcode.ISHR: np.right_shift,
}

_FLT_BIN_UFUNCS = {
    Opcode.FADD: np.add,
    Opcode.FSUB: np.subtract,
    Opcode.FMUL: np.multiply,
    Opcode.FMIN: np.minimum,
    Opcode.FMAX: np.maximum,
}


def _make_ibin(instr):
    ufunc = _INT_BIN_UFUNCS[instr.op]
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def run(w, frame, cycle):
        ri = w.regs_i
        av_ = ri[ai] if ai >= 0 else av
        bv_ = ri[bi] if bi >= 0 else bv
        if frame[4]:
            ufunc(av_, bv_, out=ri[d])
        else:
            ufunc(av_, bv_, out=ri[d], where=frame[2])
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_idivmod(instr):
    ufunc = np.floor_divide if instr.op == Opcode.IDIV else np.remainder
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def run(w, frame, cycle):
        ri = w.regs_i
        av_ = ri[ai] if ai >= 0 else av
        if bi >= 0:
            bv_ = ri[bi]
            safe = np.where(bv_ == 0, 1, bv_)
        else:
            safe = 1 if bv == 0 else bv
        if frame[4]:
            ufunc(av_, safe, out=ri[d])
        else:
            ufunc(av_, safe, out=ri[d], where=frame[2])
        w.ready_cycle = cycle + w._sfu_lat
        return False

    return run


def _make_iunary(instr):
    ufunc = np.negative if instr.op == Opcode.INEG else np.bitwise_not
    d = instr.dst.idx
    a = _enc_i(instr.a)
    if a is None:
        return None
    ai, av = a

    def run(w, frame, cycle):
        ri = w.regs_i
        av_ = ri[ai] if ai >= 0 else av
        if frame[4]:
            ufunc(av_, out=ri[d])
        else:
            ufunc(av_, out=ri[d], where=frame[2])
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_mov(instr):
    d = instr.dst.idx
    if type(instr.a) is Reg:
        ai, av = instr.a.idx, 0
    else:
        ai, av = -1, instr.a.value

    def run(w, frame, cycle):
        ri = w.regs_i
        src = ri[ai] if ai >= 0 else av
        if frame[4]:
            np.copyto(ri[d], src, casting="unsafe")
        else:
            np.copyto(ri[d], src, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_fbin(instr):
    ufunc = _FLT_BIN_UFUNCS[instr.op]
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def run(w, frame, cycle):
        av_ = _fval(w, ak, ai, av)
        bv_ = _fval(w, bk, bi, bv)
        rd = w.regs_f[d]
        if frame[4]:
            ufunc(av_, bv_, out=rd)
        else:
            ufunc(av_, bv_, out=rd, where=frame[2])
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_fdiv(instr):
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def run(w, frame, cycle):
        av_ = _fval(w, ak, ai, av)
        bv_ = _fval(w, bk, bi, bv)
        if isinstance(bv_, np.ndarray):
            safe = np.where(bv_ == 0.0, 1.0, bv_)
        else:
            safe = 1.0 if bv_ == 0.0 else bv_
        rd = w.regs_f[d]
        if frame[4]:
            np.divide(av_, safe, out=rd)
        else:
            np.divide(av_, safe, out=rd, where=frame[2])
        w.ready_cycle = cycle + w._sfu_lat
        return False

    return run


def _make_funary(instr):
    op = instr.op
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)

    def run(w, frame, cycle):
        av_ = _fval(w, ak, ai, av)
        rd = w.regs_f[d]
        full = frame[4]
        mask = frame[2]
        sfu = False
        if op == Opcode.FNEG:
            result = np.negative(av_)
        elif op == Opcode.FABS:
            result = np.abs(np.asarray(av_))
        elif op == Opcode.FSQRT:
            result = np.sqrt(np.abs(np.asarray(av_, dtype=np.float64)))
            sfu = True
        else:  # FMOV
            result = av_
        if full:
            np.copyto(rd, result, casting="unsafe")
        else:
            np.copyto(rd, result, where=mask, casting="unsafe")
        w.ready_cycle = cycle + (w._sfu_lat if sfu else w._alu_lat)
        return False

    return run


def _make_itof(instr):
    d = instr.dst.idx
    if type(instr.a) is Reg:
        ai, av = instr.a.idx, 0.0
    else:
        ai, av = -1, instr.a.value

    def run(w, frame, cycle):
        src = w.regs_i[ai] if ai >= 0 else np.asarray(av, dtype=np.float64)
        rd = w.regs_f[d]
        if frame[4]:
            np.copyto(rd, src, casting="unsafe")
        else:
            np.copyto(rd, src, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_ftoi(instr):
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)

    def run(w, frame, cycle):
        src = np.asarray(_fval(w, ak, ai, av), dtype=np.float64).astype(np.int64)
        rd = w.regs_i[d]
        if frame[4]:
            np.copyto(rd, src, casting="unsafe")
        else:
            np.copyto(rd, src, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_setp(instr):
    fn = _CMP_FUNCS[instr.cmp]
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def run(w, frame, cycle):
        ri = w.regs_i
        av_ = ri[ai] if ai >= 0 else av
        bv_ = ri[bi] if bi >= 0 else bv
        result = fn(np.asarray(av_), np.asarray(bv_))
        if frame[4]:
            np.copyto(ri[d], result, casting="unsafe")
        else:
            np.copyto(ri[d], result, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_fsetp(instr):
    fn = _CMP_FUNCS[instr.cmp]
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def run(w, frame, cycle):
        av_ = np.asarray(_fval(w, ak, ai, av), dtype=np.float64)
        bv_ = np.asarray(_fval(w, bk, bi, bv), dtype=np.float64)
        result = fn(av_, bv_)
        rd = w.regs_i[d]
        if frame[4]:
            np.copyto(rd, result, casting="unsafe")
        else:
            np.copyto(rd, result, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_selp(instr):
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    c = _enc_i(instr.c)
    if a is None or b is None or c is None:
        return None
    ai, av = a
    bi, bv = b
    ci, cv = c

    def run(w, frame, cycle):
        ri = w.regs_i
        cond = (ri[ci] != 0) if ci >= 0 else (cv != 0)
        result = np.where(cond, ri[ai] if ai >= 0 else av, ri[bi] if bi >= 0 else bv)
        if frame[4]:
            np.copyto(ri[d], result, casting="unsafe")
        else:
            np.copyto(ri[d], result, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


_SPECIAL_GETTERS = {
    Special.TID_X: lambda w: w.tid_x,
    Special.TID_Y: lambda w: w.tid_y,
    Special.TID_Z: lambda w: w.tid_z,
    Special.NTID_X: lambda w: w.tb.block_dims[0],
    Special.NTID_Y: lambda w: w.tb.block_dims[1],
    Special.NTID_Z: lambda w: w.tb.block_dims[2],
    Special.CTAID_X: lambda w: w.tb.ctaid[0],
    Special.CTAID_Y: lambda w: w.tb.ctaid[1],
    Special.CTAID_Z: lambda w: w.tb.ctaid[2],
    Special.NCTAID_X: lambda w: w.tb.grid_dims[0],
    Special.NCTAID_Y: lambda w: w.tb.grid_dims[1],
    Special.NCTAID_Z: lambda w: w.tb.grid_dims[2],
    Special.PARAM: lambda w: w.tb.param_addr,
    Special.GTID: lambda w: w.gtid,
}


def _make_read_special(instr):
    getter = _SPECIAL_GETTERS.get(instr.special)
    if getter is None:
        return None
    d = instr.dst.idx

    def run(w, frame, cycle):
        value = getter(w)
        rd = w.regs_i[d]
        if frame[4]:
            np.copyto(rd, value, casting="unsafe")
        else:
            np.copyto(rd, value, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_load(instr):
    if type(instr.a) is not Reg:
        return None
    is_float = instr.op == Opcode.FLD
    d = instr.dst.idx
    base_idx = instr.a.idx
    off = instr.offset

    def run(w, frame, cycle):
        addrs, alist, lo, hi = _lane_addrs(w, frame, base_idx, off)
        mem = w._mem_f if is_float else w._mem_i
        reg = (w.regs_f if is_float else w.regs_i)[d]
        if frame[4]:
            reg[:] = mem[addrs]
        else:
            reg[frame[2]] = mem[addrs]
        _global_timing(w, alist, False, cycle, lo, hi)
        return False

    return run


def _make_store(instr):
    if type(instr.a) is not Reg:
        return None
    is_float = instr.op == Opcode.FST
    base_idx = instr.a.idx
    off = instr.offset
    if is_float:
        sk, si, sv = _enc_f(instr.b)
    else:
        b = _enc_i(instr.b)
        if b is None:
            return None
        si, sv = b
        sk = None

    def run(w, frame, cycle):
        addrs, alist, lo, hi = _lane_addrs(w, frame, base_idx, off)
        if is_float:
            src = _fval(w, sk, si, sv)
            mem = w._mem_f
        else:
            src = w.regs_i[si] if si >= 0 else sv
            mem = w._mem_i
        if isinstance(src, np.ndarray):
            mem[addrs] = src if frame[4] else src[frame[2]]
        else:
            mem[addrs] = src
        _global_timing(w, alist, True, cycle, lo, hi)
        return False

    return run


def _make_atomic(instr):
    if type(instr.a) is not Reg:
        return None
    op = instr.op
    base_idx = instr.a.idx
    off = instr.offset
    d = instr.dst.idx if instr.dst is not None else -1
    b = _enc_i(instr.b)
    if b is None:
        return None
    bi, bv = b
    if instr.c is not None:
        c = _enc_i(instr.c)
        if c is None:
            return None
        ci, cv = c
    else:
        ci, cv = -1, 0
    ref_handler = _DISPATCH[op]

    def run(w, frame, cycle):
        full = frame[4]
        mask = frame[2]
        base = w.regs_i[base_idx]
        if not full:
            base = base[mask]
        addrs = base + off if off else base
        alist = addrs.tolist()
        if len(set(alist)) != len(alist):
            # Intra-warp address conflict: the reference core serializes
            # conflicting lanes in lane order; keep its exact semantics.
            return ref_handler(w, instr, frame, mask, cycle)
        if alist:
            lo = min(alist)
            hi = max(alist)
            if lo < 0 or hi >= w._mem_size:
                # Cold path: report the first offending address in lane
                # order, exactly as the reference core does.
                for a in alist:
                    if a < 0 or a >= w._mem_size:
                        raise ExecutionError(
                            f"kernel {w.tb.func.name!r}: atomic out of range at {a}"
                        )
        else:
            lo, hi = 0, -1
        mem = w._mem_i
        old = mem[addrs]
        if d >= 0:
            if full:
                w.regs_i[d][:] = old
            else:
                w.regs_i[d][mask] = old
        if bi >= 0:
            vals = w.regs_i[bi] if full else w.regs_i[bi][mask]
        else:
            vals = bv
        if op == Opcode.ATOM_ADD:
            mem[addrs] = old + vals
        elif op == Opcode.ATOM_MIN:
            mem[addrs] = np.minimum(old, vals)
        elif op == Opcode.ATOM_MAX:
            mem[addrs] = np.maximum(old, vals)
        elif op == Opcode.ATOM_OR:
            mem[addrs] = old | vals
        elif op == Opcode.ATOM_EXCH:
            mem[addrs] = vals
        else:  # ATOM_CAS: b is compare, c is the new value
            new = (w.regs_i[ci] if full else w.regs_i[ci][mask]) if ci >= 0 else cv
            mem[addrs] = np.where(old == vals, new, old)
        _global_timing(w, alist, False, cycle, lo, hi)
        return False

    return run


def _make_bra(instr):
    target = instr.target
    if instr.pred is None:

        def run_uncond(w, frame, cycle):
            w.ready_cycle = cycle + w._alu_lat
            frame[0] = target
            return True

        return run_uncond

    p = instr.pred.idx
    sense = instr.pred_sense
    rpc = instr.reconv

    def run(w, frame, cycle):
        w.ready_cycle = cycle + w._alu_lat
        predv = w.regs_i[p] != 0
        if not sense:
            predv = ~predv
        mask = frame[2]
        taken = mask & predv
        n_taken = int(np.count_nonzero(taken))
        if n_taken == 0:
            w._stats.branches_uniform += 1
            frame[0] += 1
            return True
        n_active = frame[3]
        if n_taken == n_active:
            w._stats.branches_uniform += 1
            frame[0] = target
            return True
        w._stats.branches_diverged += 1
        fall = mask & ~predv
        pc = frame[0]
        frame[0] = rpc
        stack = w.stack
        # Divergent paths are strict subsets of a <=32-lane mask, so the
        # full flag is always False on pushed frames.
        stack.append([pc + 1, rpc, fall, n_active - n_taken, False])
        stack.append([target, rpc, taken, n_taken, False])
        return True

    return run


def _make_join(instr):
    def run(w, frame, cycle):
        w.ready_cycle = cycle + 1
        return False

    return run


def _make_bar(instr):
    def run(w, frame, cycle):
        frame[0] += 1
        w.at_barrier = True
        w.tb.arrive_barrier(w, cycle)
        return True

    return run


def _make_exit(instr):
    def run(w, frame, cycle):
        w.finished = True
        w.tb.warp_finished(w, cycle)
        return True

    return run


_BUILDERS = {
    Opcode.IADD: _make_ibin,
    Opcode.ISUB: _make_ibin,
    Opcode.IMUL: _make_ibin,
    Opcode.IMIN: _make_ibin,
    Opcode.IMAX: _make_ibin,
    Opcode.IAND: _make_ibin,
    Opcode.IOR: _make_ibin,
    Opcode.IXOR: _make_ibin,
    Opcode.ISHL: _make_ibin,
    Opcode.ISHR: _make_ibin,
    Opcode.IDIV: _make_idivmod,
    Opcode.IMOD: _make_idivmod,
    Opcode.INEG: _make_iunary,
    Opcode.INOT: _make_iunary,
    Opcode.MOV: _make_mov,
    Opcode.FADD: _make_fbin,
    Opcode.FSUB: _make_fbin,
    Opcode.FMUL: _make_fbin,
    Opcode.FMIN: _make_fbin,
    Opcode.FMAX: _make_fbin,
    Opcode.FDIV: _make_fdiv,
    Opcode.FNEG: _make_funary,
    Opcode.FSQRT: _make_funary,
    Opcode.FABS: _make_funary,
    Opcode.FMOV: _make_funary,
    Opcode.ITOF: _make_itof,
    Opcode.FTOI: _make_ftoi,
    Opcode.SETP: _make_setp,
    Opcode.FSETP: _make_fsetp,
    Opcode.SELP: _make_selp,
    Opcode.READ_SPECIAL: _make_read_special,
    Opcode.LD: _make_load,
    Opcode.FLD: _make_load,
    Opcode.ST: _make_store,
    Opcode.FST: _make_store,
    Opcode.ATOM_ADD: _make_atomic,
    Opcode.ATOM_MIN: _make_atomic,
    Opcode.ATOM_MAX: _make_atomic,
    Opcode.ATOM_OR: _make_atomic,
    Opcode.ATOM_EXCH: _make_atomic,
    Opcode.ATOM_CAS: _make_atomic,
    Opcode.BRA: _make_bra,
    Opcode.JOIN: _make_join,
    Opcode.NOP: _make_join,
    Opcode.BAR: _make_bar,
    Opcode.EXIT: _make_exit,
}


def _make_ref(instr, handler):
    """Fallback: adapt a reference ``Warp`` handler to the decoded form."""

    def run(w, frame, cycle):
        return handler(w, instr, frame, frame[2], cycle)

    return run


# ----------------------------------------------------------------------
# Superblock fusion
#
# Opcodes that may live inside a fused region: pure ALU/SFU register ops
# with a fixed latency class and no control flow, no memory-system
# timing, no barrier and no device-runtime side effects.  Loads/stores
# and atomics are excluded even when natively decoded: their latency
# depends on DRAM/L2 state, and coalescing stats must accrue at the
# exact per-instruction issue order the scheduler would produce.
# ----------------------------------------------------------------------
_FUSABLE_OPS = frozenset(
    {
        Opcode.IDIV,
        Opcode.IMOD,
        Opcode.INEG,
        Opcode.INOT,
        Opcode.MOV,
        Opcode.FDIV,
        Opcode.FNEG,
        Opcode.FSQRT,
        Opcode.FABS,
        Opcode.FMOV,
        Opcode.ITOF,
        Opcode.FTOI,
        Opcode.SETP,
        Opcode.FSETP,
        Opcode.SELP,
        Opcode.READ_SPECIAL,
    }
    | set(_INT_BIN_UFUNCS)
    | set(_FLT_BIN_UFUNCS)
)

#: Fusable opcodes charged the SFU latency class (mirrors the closures).
_SFU_OPS = frozenset({Opcode.IDIV, Opcode.IMOD, Opcode.FDIV, Opcode.FSQRT})

#: Opcodes a warp may execute past other warps' ready cycles (see
#: :meth:`FastWarp.step_free_window`): their native closures touch only
#: warp-private state — registers, the divergence stack, ``ready_cycle``
#: — and additive stats counters, never the memory system, the event
#: queue, warp-lifecycle bookkeeping or ``gpu.cycle``.  A reference
#: fallback never qualifies (the decode's per-pc class also requires a
#: native closure).
_PRIVATE_OPS = _FUSABLE_OPS | {Opcode.BRA, Opcode.JOIN, Opcode.NOP}

#: Global-memory opcodes with native closures: shared DRAM/L2 state, so
#: a run-ahead window may only execute one *in global time order* — and
#: then only while its SMX is the sole runnable one (sensitive ops on
#: other SMXs are bounded by the burst horizon, not by this SMX's heap).
_MEM_OPS = frozenset(
    {
        Opcode.LD,
        Opcode.FLD,
        Opcode.ST,
        Opcode.FST,
        Opcode.ATOM_ADD,
        Opcode.ATOM_MIN,
        Opcode.ATOM_MAX,
        Opcode.ATOM_OR,
        Opcode.ATOM_EXCH,
        Opcode.ATOM_CAS,
    }
)


class FusedRegion:
    """One decoded straight-line ALU region, executable in a single call.

    ``runs`` are the region's per-instruction closures in pc order;
    ``sfu_flags[i]`` says whether instruction i is SFU-class.  Latencies
    are *not* baked in: the decode is cached on the shared Program, and
    different GPUs may run it with different ``alu_latency`` /
    ``sfu_latency`` values, so the region's duration is derived per warp
    as ``n_alu * alu_lat + n_sfu * sfu_lat``.
    """

    __slots__ = ("start", "length", "ops", "runs", "sfu_flags", "n_alu", "n_sfu")

    def __init__(self, start: int, ops: tuple, runs: tuple) -> None:
        self.start = start
        self.length = len(ops)
        self.ops = ops
        self.runs = runs
        self.sfu_flags = tuple(op in _SFU_OPS for op in ops)
        self.n_sfu = sum(self.sfu_flags)
        self.n_alu = self.length - self.n_sfu


def decode_program(program) -> tuple:
    """Decode a finalized program into (table, n_int, n_flt, regions).

    The table holds one ``(closure, opcode, klass, region)`` row per
    pc.  ``klass`` drives budget-safe run-ahead: 1 = warp-private
    (native closure, opcode in :data:`_PRIVATE_OPS`), 2 = native
    global-memory op (:data:`_MEM_OPS`; run-ahead may inline it in
    global time order under the scheduler heap's bound), 0 = everything
    else (barriers, exits, launches, reference fallbacks — run-ahead
    always stops before these).  ``region`` is the :class:`FusedRegion`
    starting at this pc, or ``None`` — carried in the row so the hot
    window loops pay one table fetch instead of a separate dict probe
    per instruction.  ``regions`` maps each start pc to its region
    (``None`` when the program has no fusable region).  The result is
    cached on the program, so all warps of all launches share one
    decode.
    """
    cached = getattr(program, "_fast_table", None)
    if cached is not None:
        return cached
    table: List[tuple] = []
    native: List[bool] = []
    for instr in program.instructions:
        op = instr.op
        builder = _BUILDERS.get(op)
        run = builder(instr) if builder is not None else None
        native.append(run is not None)
        if run is None:
            run = _make_ref(instr, _DISPATCH[op])
        if native[-1] and op in _PRIVATE_OPS:
            klass = 1
        elif native[-1] and op in _MEM_OPS:
            klass = 2
        else:
            klass = 0
        table.append((run, op, klass, None))

    # A pc is fusable only when its opcode class qualifies AND the decode
    # produced a native closure (a reference fallback — e.g. a float
    # immediate in an int operand — keeps reference semantics, including
    # its own error behaviour, so it must stay a visible single step).
    def fusable(pc, instr):
        return native[pc] and instr.op in _FUSABLE_OPS

    spans = straight_line_regions(program.instructions, fusable)
    regions = None
    if spans:
        regions = {}
        for start, length in spans:
            ops = tuple(table[pc][1] for pc in range(start, start + length))
            runs = tuple(table[pc][0] for pc in range(start, start + length))
            region = FusedRegion(start, ops, runs)
            regions[start] = region
            run, op, klass, _ = table[start]
            table[start] = (run, op, klass, region)
    highest = program.max_register_index()
    cached = (table, highest["int"] + 1, highest["flt"] + 1, regions)
    program._fast_table = cached
    return cached


class FastWarp(Warp):
    """Warp with pre-decoded instruction kernels and extended frames."""

    __slots__ = ("_table", "_regions", "_alu_lat", "_sfu_lat", "_cstats", "_mem_access")

    def __init__(self, tb, warp_index: int, context_slot: int) -> None:
        gpu = tb.gpu
        func = tb.func
        self.tb = tb
        self.warp_index = warp_index
        self.context_slot = context_slot
        self.hw_slot_base = tb.smx.smx_id * 157 + context_slot * WARP_SIZE
        self.age = 0
        self._gpu = gpu
        self._instrs = func.program.instructions
        self._mem_i = gpu.memory.i
        self._mem_f = gpu.memory.f
        self._mem_size = gpu.memory.size_words
        self._stats = gpu.stats
        self._cfg = gpu.config
        self._lat = gpu.latency
        self._san = gpu.sanitizer
        self._alu_lat = gpu.config.alu_latency
        self._sfu_lat = gpu.config.sfu_latency
        # Hot-path attribute caches: one getattr instead of a chain per
        # global-memory instruction (see _global_timing).
        self._cstats = gpu.stats.coalescing
        self._mem_access = gpu.memsys.warp_access_list

        table, n_int, n_flt, regions = decode_program(func.program)
        self._table = table
        self._regions = regions
        self._alloc_registers(n_int, n_flt)

        bx, by, _bz = tb.block_dims
        threads = tb.block_threads
        init_mask, tid_x, tid_y, tid_z, clamped, active = _geometry(
            bx, by, threads, warp_index
        )
        self.init_mask = init_mask
        self.tid_x = tid_x
        self.tid_y = tid_y
        self.tid_z = tid_z
        self.gtid = tb.block_linear_index * threads + clamped

        self.stack = [[0, -1, init_mask, active, active == WARP_SIZE]]
        self.ready_cycle = 0
        self.finished = False
        self.at_barrier = False

    def _alloc_registers(self, n_int: int, n_flt: int) -> None:
        """Allocate private register banks (the vector core overrides
        this to hand out views into the per-program SoA slab)."""
        self.regs_i = np.zeros((n_int, WARP_SIZE), dtype=np.int64)
        self.regs_f = np.zeros((n_flt, WARP_SIZE), dtype=np.float64)

    def step(self, cycle: int) -> None:
        """Execute one decoded instruction for the active frame's lanes."""
        stack = self.stack
        frame = stack[-1]
        while len(stack) > 1 and frame[1] >= 0 and frame[0] == frame[1]:
            stack.pop()
            frame = stack[-1]
        pc = frame[0]
        try:
            run, op, _, _ = self._table[pc]
        except IndexError:
            raise ExecutionError(
                f"warp ran off the end of kernel {self.tb.func.name!r} at pc={pc}"
            ) from None
        stats = self._stats
        stats.issued_instructions += 1
        stats.active_lane_sum += frame[3]
        tracer = self._gpu.tracer
        if tracer is not None:
            tracer.on_issue(self, pc, op, frame[3], cycle)
        if self._san is not None:
            self._san.observe(self, pc, self._instrs[pc], frame[2], cycle)
        if not run(self, frame, cycle):
            frame[0] = pc + 1

    def step_window(self, cycle: int, horizon: int, events: list, heap: list) -> int:
        """Execute this warp repeatedly while it is provably the sole actor.

        Called only from :meth:`SMX.burst <repro.sim.smx.SMX.burst>` in
        place of :meth:`step`, after the warp was popped as ready at
        ``cycle`` during a single-runnable-SMX burst.  As long as the
        warp's next issue lands strictly before the *window bound* — the
        earliest of ``horizon`` (next other-SMX wake-up / watchdog), the
        next pending GPU event, and the next other-warp ready cycle on
        this SMX (``heap``, whose stale lazy-deletion entries can only
        shrink the bound) — no scheduler decision, issue-budget check or
        event delivery could interleave with it in the reference
        execution, so the warp keeps executing locally without
        round-tripping through the issue loop.

        Within a window, a full-mask warp entering a decoded
        :class:`FusedRegion` whose whole duration fits under the bound
        executes the region in one call, charging identical
        per-instruction stats and tracer callbacks (fusion is skipped
        under the sanitizer: its one-``observe()``-per-step contract
        needs the per-instruction path).  Everything else single-steps
        with exact synthesized issue cycles.

        Returns the issue cycle of the last executed instruction; the
        caller advances ``gpu.cycle`` and the occupancy integral to it.
        """
        gpu = self._gpu
        table = self._table
        stats = self._stats
        san = self._san
        tracer = gpu.tracer
        instrs = self._instrs
        alu_lat = self._alu_lat
        sfu_lat = self._sfu_lat
        # Fused timing arithmetic needs strictly increasing issue cycles
        # (latency >= 1); degenerate zero-latency configs single-step.
        # (Rows carry a region only when the decode found one, so no
        # separate regions-present check is needed.)
        fuse = san is None and alu_lat >= 1 and sfu_lat >= 1
        stack = self.stack
        last = cycle
        # The window bound is invariant across private and memory ops:
        # only klass-0 ops (launches, barriers, reference fallbacks) can
        # schedule events or wake warps, and the caller owns all pops.
        # Cache it and refresh only after those.
        limit = horizon
        if events:
            e0 = events[0][0]
            if e0 < limit:
                limit = e0
        if heap:
            h0 = heap[0][0]
            if h0 < limit:
                limit = h0
        # Issue counters accumulate in locals and flush once per window
        # (exact under exceptions via the finally; nothing observes the
        # running totals mid-window — tracer and sanitizer callbacks get
        # the per-op values as arguments).
        issued = 0
        lanes = 0
        try:
            while True:
                frame = stack[-1]
                while len(stack) > 1 and frame[1] >= 0 and frame[0] == frame[1]:
                    stack.pop()
                    frame = stack[-1]
                pc = frame[0]
                try:
                    run, op, klass, region = table[pc]
                except IndexError:
                    raise ExecutionError(
                        f"warp ran off the end of kernel {self.tb.func.name!r} "
                        f"at pc={pc}"
                    ) from None
                if region is not None and fuse and frame[4]:
                    end = cycle + region.n_alu * alu_lat + region.n_sfu * sfu_lat
                    if end <= limit:
                        n = region.length
                        issued += n
                        lanes += n * frame[3]
                        if tracer is not None:
                            tracer.on_fused(self, pc, region, cycle)
                        c = cycle
                        for run in region.runs:
                            run(self, frame, c)
                            c = self.ready_cycle
                        frame[0] = pc + n
                        last = end - (sfu_lat if region.sfu_flags[-1] else alu_lat)
                        if end < limit:
                            cycle = end
                            continue
                        return last
                issued += 1
                lanes += frame[3]
                if tracer is not None:
                    tracer.on_issue(self, pc, op, frame[3], cycle)
                if san is not None:
                    san.observe(self, pc, instrs[pc], frame[2], cycle)
                if not run(self, frame, cycle):
                    frame[0] = pc + 1
                last = cycle
                if self.finished or self.at_barrier:
                    return last
                nxt = self.ready_cycle
                if nxt <= cycle:
                    # Zero-latency op: a same-cycle reissue competes for the
                    # issue budget, which only the caller's loop models.
                    return last
                if klass == 0:
                    # The instruction may have scheduled an event (launch
                    # delivery) or woken warps (barrier release, new block):
                    # re-derive the cached bound.
                    limit = horizon
                    if events:
                        e0 = events[0][0]
                        if e0 < limit:
                            limit = e0
                    if heap:
                        h0 = heap[0][0]
                        if h0 < limit:
                            limit = h0
                if nxt >= limit:
                    return last
                cycle = nxt
        finally:
            stats.issued_instructions += issued
            stats.active_lane_sum += lanes

    def step_free_window(
        self,
        cycle: int,
        horizon: int,
        events: list,
        heap: Optional[list] = None,
        inline_mem: bool = False,
    ) -> int:
        """Budget-safe run-ahead: execute register-private ops at their
        exact future issue cycles, past other warps' ready times.

        Preconditions, checked by the callers in
        :class:`~repro.sim.smx.SMX`:

        * ``resident_warps <= issue_width`` on this SMX — resident warps
          (including barrier-held ones) bound the number of same-cycle
          issuers, so the issue budget can never bind and every warp
          issues exactly at its own ready cycle, independent of all
          others;
        * GTO scheduling — warp ages are never rewritten, so running
          this warp's ops out of global issue order cannot perturb the
          heap's tie-breaking;
        * no tracer and no sanitizer — both observe the global
          interleaving, which run-ahead reorders (per-instruction cycles
          stay exact, only callback order changes);
        * ``alu_latency >= 1`` and ``sfu_latency >= 1`` — private ops
          then always advance time, so at most one issue per cycle can
          bypass the caller's per-pop budget counting.

        Under those conditions an op whose decoded closure touches only
        this warp's registers, divergence stack and additive stats
        counters (the decode marks such pcs ``private``) commutes with
        every other warp's execution, so it runs as soon as its issue
        cycle is known, bounded only by the next GPU event and
        ``horizon`` (events can add blocks, breaking the preconditions).
        The first op — popped due by the caller — always executes; after
        that the window stops *before* the next shared-state op (memory
        system, barrier, exit, device launches, reference fallbacks),
        leaving ``ready_cycle`` at that op's issue time so the warp
        re-enters the scheduler heap and the op executes when this warp
        is again the globally next issuer.  Fused superblock regions
        (all-private by construction) run whole whenever they fit under
        the bound.  Returns the last executed issue cycle; the caller
        does *not* advance ``gpu.cycle`` to it — global time still
        advances pop-to-pop, so earlier-due warps keep their exact
        issue cycles.

        With ``inline_mem`` (burst mode only: this SMX is the sole
        runnable one, so every other memory client is bounded below by
        ``heap[0][0]``, the next event, or the burst horizon), native
        global-memory ops (decode klass 2) also run mid-window as long
        as their issue cycle is strictly below ``min(hard,
        heap[0][0])`` — that keeps every memory-system access in global
        time order, which the DRAM controller's arrival bookkeeping and
        cache LRU state require.  The caller additionally guarantees
        ``l1_hit_latency >= 1`` and ``l2_hit_latency >= 1`` so inlined
        loads and atomics always advance time (stores complete at
        ``alu_latency``, already bounded by the base preconditions).
        """
        stats = self._stats
        table = self._table
        alu_lat = self._alu_lat
        sfu_lat = self._sfu_lat
        stack = self.stack
        last = cycle
        first = True
        # Private and inlined-memory ops never schedule events, so the
        # event bound is loop-invariant except across the (single
        # possible) klass-0 first op; cache it.
        hard = horizon
        if events:
            e0 = events[0][0]
            if e0 < hard:
                hard = e0
        # Issue counters accumulate in locals and flush once per window
        # (the finally keeps them exact if a decoded closure raises, as
        # the per-op path counted each op before executing it).
        issued = 0
        lanes = 0
        try:
            while True:
                frame = stack[-1]
                while len(stack) > 1 and frame[1] >= 0 and frame[0] == frame[1]:
                    stack.pop()
                    frame = stack[-1]
                pc = frame[0]
                if not first and cycle >= hard:
                    return last
                try:
                    run, op, klass, region = table[pc]
                except IndexError:
                    raise ExecutionError(
                        f"warp ran off the end of kernel {self.tb.func.name!r} "
                        f"at pc={pc}"
                    ) from None
                if region is not None and frame[4]:
                    # Preconditions already guarantee no sanitizer and
                    # latencies >= 1, so a row-carried region always fuses.
                    end = cycle + region.n_alu * alu_lat + region.n_sfu * sfu_lat
                    if end <= hard:
                        n = region.length
                        issued += n
                        lanes += n * frame[3]
                        c = cycle
                        for run in region.runs:
                            run(self, frame, c)
                            c = self.ready_cycle
                        frame[0] = pc + n
                        last = end - (sfu_lat if region.sfu_flags[-1] else alu_lat)
                        if end < hard:
                            cycle = end
                            first = False
                            continue
                        return last
                if not first and klass != 1:
                    if klass != 2 or not inline_mem:
                        # The next op touches shared state: it must execute
                        # in global time order, i.e. on this warp's next
                        # pop.  Its issue time is already in ready_cycle.
                        return last
                    order = hard
                    if heap:
                        h0 = heap[0][0]
                        if h0 < order:
                            order = h0
                    if cycle >= order:
                        # Another warp (or event) may touch the memory
                        # system first — defer to the next pop.
                        return last
                issued += 1
                lanes += frame[3]
                if not run(self, frame, cycle):
                    frame[0] = pc + 1
                last = cycle
                if self.finished or self.at_barrier:
                    return last
                nxt = self.ready_cycle
                if nxt <= cycle:
                    # Zero-latency (first) op: a same-cycle reissue competes
                    # for the issue budget, which the caller counts per pop.
                    return last
                cycle = nxt
                first = False
                if klass == 0:
                    # A klass-0 first op (launch/fallback) may have scheduled
                    # an event inside the window; refresh the cached bound.
                    hard = horizon
                    if events:
                        e0 = events[0][0]
                        if e0 < hard:
                            hard = e0
        finally:
            stats.issued_instructions += issued
            stats.active_lane_sum += lanes
