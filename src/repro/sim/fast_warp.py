"""The fast execution core's warp interpreter.

:class:`FastWarp` is a drop-in :class:`~repro.sim.warp.Warp` subclass used
when ``GPUConfig.fast_core`` is set (the default).  It executes the same
instruction semantics as the reference interpreter — bit-for-bit on the
architectural state and cycle-for-cycle on the timing model — but removes
the per-step interpretation overhead three ways:

* **Pre-decoded instruction kernels.**  Each program is decoded once into
  a table of per-instruction closures (cached on the
  :class:`~repro.isa.program.Program`); operand banks, immediates and
  latency classes are resolved at decode time instead of on every issue.
* **Extended PDOM frames.**  Stack frames carry ``[pc, reconv_pc, mask,
  active_count, full_flag]`` so the active-lane count (needed for the
  warp-activity statistic on every issue) and the common all-32-lanes case
  are O(1) instead of a ``count_nonzero`` per step.  Mask arrays are never
  mutated in place, so the cached count is exact by construction.
* **Vectorized hot paths.**  Full-mask ALU ops use in-place ufunc forms
  (``out=`` / ``where=``); global loads/stores generate lane addresses in
  one vector op and feed segment sets to
  :func:`repro.memory.coalescing.coalesce_address_list`; address-disjoint
  atomics execute as gather/compute/scatter instead of a per-lane loop.

Anything rare (shared/local memory, shuffles, votes, device-runtime calls,
atomics with intra-warp address conflicts, immediate-base memory ops)
delegates to the inherited reference handler, which keeps the two cores
trivially identical where speed does not matter.

Stat-exactness invariants worth keeping in mind when editing:

* ``coalesce_address_list`` must produce segments in ascending order —
  the same order ``np.unique`` gives the reference core — because DRAM
  bank/row state and the L2's LRU depend on access order.
* The reference serializes conflicting atomic lanes in lane order; the
  vectorized path therefore only handles all-distinct address sets.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..config import WARP_SIZE
from ..errors import ExecutionError
from ..isa.instructions import Bank, Cmp, Opcode, Reg, Special
from ..memory.coalescing import coalesce_address_list
from .warp import _CMP_FUNCS, _DISPATCH, Warp

# ----------------------------------------------------------------------
# Shared warp geometry
#
# Lane geometry depends only on (block_dims, block_threads, warp_index),
# so warps of equally-shaped blocks share one set of read-only arrays
# instead of recomputing five vector ops per warp construction.
# ----------------------------------------------------------------------
_GEOM_CACHE: Dict[Tuple[int, int, int, int], tuple] = {}


def _geometry(bx: int, by: int, threads: int, warp_index: int) -> tuple:
    key = (bx, by, threads, warp_index)
    cached = _GEOM_CACHE.get(key)
    if cached is None:
        linear = warp_index * WARP_SIZE + np.arange(WARP_SIZE, dtype=np.int64)
        init_mask = linear < threads
        clamped = np.minimum(linear, threads - 1)
        tid_x = clamped % bx
        tid_y = (clamped // bx) % by
        tid_z = clamped // (bx * by)
        active = int(np.count_nonzero(init_mask))
        for arr in (init_mask, clamped, tid_x, tid_y, tid_z):
            arr.setflags(write=False)
        cached = (init_mask, tid_x, tid_y, tid_z, clamped, active)
        _GEOM_CACHE[key] = cached
    return cached


# ----------------------------------------------------------------------
# Operand encoding
# ----------------------------------------------------------------------
def _enc_i(operand):
    """Integer operand -> (reg_index, imm); reg_index -1 means immediate.

    Returns None when the immediate is not an integer (the reference
    core's unsafe cast then defines the semantics; delegate to it).
    Mirrors ``Warp._val_i``: any Reg reads the int bank.
    """
    if type(operand) is Reg:
        return operand.idx, 0
    value = operand.value
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        return None
    return -1, int(value)


def _enc_f(operand):
    """Float operand -> (kind, reg_index, imm) with kind 0=float reg,
    1=int reg (converted), 2=immediate.  Mirrors ``Warp._val_f``."""
    if type(operand) is Reg:
        if operand.bank == Bank.FLT:
            return 0, operand.idx, 0.0
        return 1, operand.idx, 0.0
    return 2, -1, operand.value


def _fval(w, kind, idx, imm):
    if kind == 0:
        return w.regs_f[idx]
    if kind == 1:
        return w.regs_i[idx].astype(np.float64)
    return imm


# ----------------------------------------------------------------------
# Shared timing helper for global-memory instructions
# ----------------------------------------------------------------------
def _global_timing(w, addrs: np.ndarray, is_write: bool, cycle: int) -> None:
    segments = coalesce_address_list(addrs.tolist())
    cstats = w._stats.coalescing
    cstats.warp_accesses += 1
    cstats.transactions += len(segments)
    cstats.lanes += addrs.size
    cstats.histogram[len(segments)] += 1
    completion = w._gpu.memsys.warp_access_list(segments, is_write, cycle)
    if is_write:
        w.ready_cycle = cycle + w._alu_lat
    else:
        w.ready_cycle = completion


def _lane_addrs(w, frame, base_idx: int, off: int) -> np.ndarray:
    """Active-lane global addresses (register base), bounds-checked."""
    base = w.regs_i[base_idx]
    if not frame[4]:
        base = base[frame[2]]
    addrs = base + off if off else base
    if addrs.size:
        lo = int(addrs.min())
        hi = int(addrs.max())
        if lo < 0 or hi >= w._mem_size:
            raise ExecutionError(
                f"kernel {w.tb.func.name!r}: global access out of range "
                f"(addr {lo}..{hi}, mem size {w._mem_size})"
            )
    return addrs


# ----------------------------------------------------------------------
# Instruction-kernel builders.  Each returns a closure run(w, frame,
# cycle) -> bool (True iff the pc was updated), or None to delegate to
# the reference handler.
# ----------------------------------------------------------------------
_INT_BIN_UFUNCS = {
    Opcode.IADD: np.add,
    Opcode.ISUB: np.subtract,
    Opcode.IMUL: np.multiply,
    Opcode.IMIN: np.minimum,
    Opcode.IMAX: np.maximum,
    Opcode.IAND: np.bitwise_and,
    Opcode.IOR: np.bitwise_or,
    Opcode.IXOR: np.bitwise_xor,
    Opcode.ISHL: np.left_shift,
    Opcode.ISHR: np.right_shift,
}

_FLT_BIN_UFUNCS = {
    Opcode.FADD: np.add,
    Opcode.FSUB: np.subtract,
    Opcode.FMUL: np.multiply,
    Opcode.FMIN: np.minimum,
    Opcode.FMAX: np.maximum,
}


def _make_ibin(instr):
    ufunc = _INT_BIN_UFUNCS[instr.op]
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def run(w, frame, cycle):
        ri = w.regs_i
        av_ = ri[ai] if ai >= 0 else av
        bv_ = ri[bi] if bi >= 0 else bv
        if frame[4]:
            ufunc(av_, bv_, out=ri[d])
        else:
            ufunc(av_, bv_, out=ri[d], where=frame[2])
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_idivmod(instr):
    ufunc = np.floor_divide if instr.op == Opcode.IDIV else np.remainder
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def run(w, frame, cycle):
        ri = w.regs_i
        av_ = ri[ai] if ai >= 0 else av
        if bi >= 0:
            bv_ = ri[bi]
            safe = np.where(bv_ == 0, 1, bv_)
        else:
            safe = 1 if bv == 0 else bv
        if frame[4]:
            ufunc(av_, safe, out=ri[d])
        else:
            ufunc(av_, safe, out=ri[d], where=frame[2])
        w.ready_cycle = cycle + w._sfu_lat
        return False

    return run


def _make_iunary(instr):
    ufunc = np.negative if instr.op == Opcode.INEG else np.bitwise_not
    d = instr.dst.idx
    a = _enc_i(instr.a)
    if a is None:
        return None
    ai, av = a

    def run(w, frame, cycle):
        ri = w.regs_i
        av_ = ri[ai] if ai >= 0 else av
        if frame[4]:
            ufunc(av_, out=ri[d])
        else:
            ufunc(av_, out=ri[d], where=frame[2])
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_mov(instr):
    d = instr.dst.idx
    if type(instr.a) is Reg:
        ai, av = instr.a.idx, 0
    else:
        ai, av = -1, instr.a.value

    def run(w, frame, cycle):
        ri = w.regs_i
        src = ri[ai] if ai >= 0 else av
        if frame[4]:
            np.copyto(ri[d], src, casting="unsafe")
        else:
            np.copyto(ri[d], src, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_fbin(instr):
    ufunc = _FLT_BIN_UFUNCS[instr.op]
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def run(w, frame, cycle):
        av_ = _fval(w, ak, ai, av)
        bv_ = _fval(w, bk, bi, bv)
        rd = w.regs_f[d]
        if frame[4]:
            ufunc(av_, bv_, out=rd)
        else:
            ufunc(av_, bv_, out=rd, where=frame[2])
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_fdiv(instr):
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def run(w, frame, cycle):
        av_ = _fval(w, ak, ai, av)
        bv_ = _fval(w, bk, bi, bv)
        if isinstance(bv_, np.ndarray):
            safe = np.where(bv_ == 0.0, 1.0, bv_)
        else:
            safe = 1.0 if bv_ == 0.0 else bv_
        rd = w.regs_f[d]
        if frame[4]:
            np.divide(av_, safe, out=rd)
        else:
            np.divide(av_, safe, out=rd, where=frame[2])
        w.ready_cycle = cycle + w._sfu_lat
        return False

    return run


def _make_funary(instr):
    op = instr.op
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)

    def run(w, frame, cycle):
        av_ = _fval(w, ak, ai, av)
        rd = w.regs_f[d]
        full = frame[4]
        mask = frame[2]
        sfu = False
        if op == Opcode.FNEG:
            result = np.negative(av_)
        elif op == Opcode.FABS:
            result = np.abs(np.asarray(av_))
        elif op == Opcode.FSQRT:
            result = np.sqrt(np.abs(np.asarray(av_, dtype=np.float64)))
            sfu = True
        else:  # FMOV
            result = av_
        if full:
            np.copyto(rd, result, casting="unsafe")
        else:
            np.copyto(rd, result, where=mask, casting="unsafe")
        w.ready_cycle = cycle + (w._sfu_lat if sfu else w._alu_lat)
        return False

    return run


def _make_itof(instr):
    d = instr.dst.idx
    if type(instr.a) is Reg:
        ai, av = instr.a.idx, 0.0
    else:
        ai, av = -1, instr.a.value

    def run(w, frame, cycle):
        src = w.regs_i[ai] if ai >= 0 else np.asarray(av, dtype=np.float64)
        rd = w.regs_f[d]
        if frame[4]:
            np.copyto(rd, src, casting="unsafe")
        else:
            np.copyto(rd, src, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_ftoi(instr):
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)

    def run(w, frame, cycle):
        src = np.asarray(_fval(w, ak, ai, av), dtype=np.float64).astype(np.int64)
        rd = w.regs_i[d]
        if frame[4]:
            np.copyto(rd, src, casting="unsafe")
        else:
            np.copyto(rd, src, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_setp(instr):
    fn = _CMP_FUNCS[instr.cmp]
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    if a is None or b is None:
        return None
    ai, av = a
    bi, bv = b

    def run(w, frame, cycle):
        ri = w.regs_i
        av_ = ri[ai] if ai >= 0 else av
        bv_ = ri[bi] if bi >= 0 else bv
        result = fn(np.asarray(av_), np.asarray(bv_))
        if frame[4]:
            np.copyto(ri[d], result, casting="unsafe")
        else:
            np.copyto(ri[d], result, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_fsetp(instr):
    fn = _CMP_FUNCS[instr.cmp]
    d = instr.dst.idx
    ak, ai, av = _enc_f(instr.a)
    bk, bi, bv = _enc_f(instr.b)

    def run(w, frame, cycle):
        av_ = np.asarray(_fval(w, ak, ai, av), dtype=np.float64)
        bv_ = np.asarray(_fval(w, bk, bi, bv), dtype=np.float64)
        result = fn(av_, bv_)
        rd = w.regs_i[d]
        if frame[4]:
            np.copyto(rd, result, casting="unsafe")
        else:
            np.copyto(rd, result, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_selp(instr):
    d = instr.dst.idx
    a = _enc_i(instr.a)
    b = _enc_i(instr.b)
    c = _enc_i(instr.c)
    if a is None or b is None or c is None:
        return None
    ai, av = a
    bi, bv = b
    ci, cv = c

    def run(w, frame, cycle):
        ri = w.regs_i
        cond = (ri[ci] != 0) if ci >= 0 else (cv != 0)
        result = np.where(cond, ri[ai] if ai >= 0 else av, ri[bi] if bi >= 0 else bv)
        if frame[4]:
            np.copyto(ri[d], result, casting="unsafe")
        else:
            np.copyto(ri[d], result, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


_SPECIAL_GETTERS = {
    Special.TID_X: lambda w: w.tid_x,
    Special.TID_Y: lambda w: w.tid_y,
    Special.TID_Z: lambda w: w.tid_z,
    Special.NTID_X: lambda w: w.tb.block_dims[0],
    Special.NTID_Y: lambda w: w.tb.block_dims[1],
    Special.NTID_Z: lambda w: w.tb.block_dims[2],
    Special.CTAID_X: lambda w: w.tb.ctaid[0],
    Special.CTAID_Y: lambda w: w.tb.ctaid[1],
    Special.CTAID_Z: lambda w: w.tb.ctaid[2],
    Special.NCTAID_X: lambda w: w.tb.grid_dims[0],
    Special.NCTAID_Y: lambda w: w.tb.grid_dims[1],
    Special.NCTAID_Z: lambda w: w.tb.grid_dims[2],
    Special.PARAM: lambda w: w.tb.param_addr,
    Special.GTID: lambda w: w.gtid,
}


def _make_read_special(instr):
    getter = _SPECIAL_GETTERS.get(instr.special)
    if getter is None:
        return None
    d = instr.dst.idx

    def run(w, frame, cycle):
        value = getter(w)
        rd = w.regs_i[d]
        if frame[4]:
            np.copyto(rd, value, casting="unsafe")
        else:
            np.copyto(rd, value, where=frame[2], casting="unsafe")
        w.ready_cycle = cycle + w._alu_lat
        return False

    return run


def _make_load(instr):
    if type(instr.a) is not Reg:
        return None
    is_float = instr.op == Opcode.FLD
    d = instr.dst.idx
    base_idx = instr.a.idx
    off = instr.offset

    def run(w, frame, cycle):
        addrs = _lane_addrs(w, frame, base_idx, off)
        mem = w._mem_f if is_float else w._mem_i
        reg = (w.regs_f if is_float else w.regs_i)[d]
        if frame[4]:
            reg[:] = mem[addrs]
        else:
            reg[frame[2]] = mem[addrs]
        _global_timing(w, addrs, False, cycle)
        return False

    return run


def _make_store(instr):
    if type(instr.a) is not Reg:
        return None
    is_float = instr.op == Opcode.FST
    base_idx = instr.a.idx
    off = instr.offset
    if is_float:
        sk, si, sv = _enc_f(instr.b)
    else:
        b = _enc_i(instr.b)
        if b is None:
            return None
        si, sv = b
        sk = None

    def run(w, frame, cycle):
        addrs = _lane_addrs(w, frame, base_idx, off)
        if is_float:
            src = _fval(w, sk, si, sv)
            mem = w._mem_f
        else:
            src = w.regs_i[si] if si >= 0 else sv
            mem = w._mem_i
        if isinstance(src, np.ndarray):
            mem[addrs] = src if frame[4] else src[frame[2]]
        else:
            mem[addrs] = src
        _global_timing(w, addrs, True, cycle)
        return False

    return run


def _make_atomic(instr):
    if type(instr.a) is not Reg:
        return None
    op = instr.op
    base_idx = instr.a.idx
    off = instr.offset
    d = instr.dst.idx if instr.dst is not None else -1
    b = _enc_i(instr.b)
    if b is None:
        return None
    bi, bv = b
    if instr.c is not None:
        c = _enc_i(instr.c)
        if c is None:
            return None
        ci, cv = c
    else:
        ci, cv = -1, 0
    ref_handler = _DISPATCH[op]

    def run(w, frame, cycle):
        full = frame[4]
        mask = frame[2]
        base = w.regs_i[base_idx]
        if not full:
            base = base[mask]
        addrs = base + off if off else base
        alist = addrs.tolist()
        if len(set(alist)) != len(alist):
            # Intra-warp address conflict: the reference core serializes
            # conflicting lanes in lane order; keep its exact semantics.
            return ref_handler(w, instr, frame, mask, cycle)
        for a in alist:
            if a < 0 or a >= w._mem_size:
                raise ExecutionError(
                    f"kernel {w.tb.func.name!r}: atomic out of range at {a}"
                )
        mem = w._mem_i
        old = mem[addrs]
        if d >= 0:
            if full:
                w.regs_i[d][:] = old
            else:
                w.regs_i[d][mask] = old
        if bi >= 0:
            vals = w.regs_i[bi] if full else w.regs_i[bi][mask]
        else:
            vals = bv
        if op == Opcode.ATOM_ADD:
            mem[addrs] = old + vals
        elif op == Opcode.ATOM_MIN:
            mem[addrs] = np.minimum(old, vals)
        elif op == Opcode.ATOM_MAX:
            mem[addrs] = np.maximum(old, vals)
        elif op == Opcode.ATOM_OR:
            mem[addrs] = old | vals
        elif op == Opcode.ATOM_EXCH:
            mem[addrs] = vals
        else:  # ATOM_CAS: b is compare, c is the new value
            new = (w.regs_i[ci] if full else w.regs_i[ci][mask]) if ci >= 0 else cv
            mem[addrs] = np.where(old == vals, new, old)
        _global_timing(w, addrs, False, cycle)
        return False

    return run


def _make_bra(instr):
    target = instr.target
    if instr.pred is None:

        def run_uncond(w, frame, cycle):
            w.ready_cycle = cycle + w._alu_lat
            frame[0] = target
            return True

        return run_uncond

    p = instr.pred.idx
    sense = instr.pred_sense
    rpc = instr.reconv

    def run(w, frame, cycle):
        w.ready_cycle = cycle + w._alu_lat
        predv = w.regs_i[p] != 0
        if not sense:
            predv = ~predv
        mask = frame[2]
        taken = mask & predv
        n_taken = int(np.count_nonzero(taken))
        if n_taken == 0:
            w._stats.branches_uniform += 1
            frame[0] += 1
            return True
        n_active = frame[3]
        if n_taken == n_active:
            w._stats.branches_uniform += 1
            frame[0] = target
            return True
        w._stats.branches_diverged += 1
        fall = mask & ~predv
        pc = frame[0]
        frame[0] = rpc
        stack = w.stack
        # Divergent paths are strict subsets of a <=32-lane mask, so the
        # full flag is always False on pushed frames.
        stack.append([pc + 1, rpc, fall, n_active - n_taken, False])
        stack.append([target, rpc, taken, n_taken, False])
        return True

    return run


def _make_join(instr):
    def run(w, frame, cycle):
        w.ready_cycle = cycle + 1
        return False

    return run


def _make_bar(instr):
    def run(w, frame, cycle):
        frame[0] += 1
        w.at_barrier = True
        w.tb.arrive_barrier(w, cycle)
        return True

    return run


def _make_exit(instr):
    def run(w, frame, cycle):
        w.finished = True
        w.tb.warp_finished(w, cycle)
        return True

    return run


_BUILDERS = {
    Opcode.IADD: _make_ibin,
    Opcode.ISUB: _make_ibin,
    Opcode.IMUL: _make_ibin,
    Opcode.IMIN: _make_ibin,
    Opcode.IMAX: _make_ibin,
    Opcode.IAND: _make_ibin,
    Opcode.IOR: _make_ibin,
    Opcode.IXOR: _make_ibin,
    Opcode.ISHL: _make_ibin,
    Opcode.ISHR: _make_ibin,
    Opcode.IDIV: _make_idivmod,
    Opcode.IMOD: _make_idivmod,
    Opcode.INEG: _make_iunary,
    Opcode.INOT: _make_iunary,
    Opcode.MOV: _make_mov,
    Opcode.FADD: _make_fbin,
    Opcode.FSUB: _make_fbin,
    Opcode.FMUL: _make_fbin,
    Opcode.FMIN: _make_fbin,
    Opcode.FMAX: _make_fbin,
    Opcode.FDIV: _make_fdiv,
    Opcode.FNEG: _make_funary,
    Opcode.FSQRT: _make_funary,
    Opcode.FABS: _make_funary,
    Opcode.FMOV: _make_funary,
    Opcode.ITOF: _make_itof,
    Opcode.FTOI: _make_ftoi,
    Opcode.SETP: _make_setp,
    Opcode.FSETP: _make_fsetp,
    Opcode.SELP: _make_selp,
    Opcode.READ_SPECIAL: _make_read_special,
    Opcode.LD: _make_load,
    Opcode.FLD: _make_load,
    Opcode.ST: _make_store,
    Opcode.FST: _make_store,
    Opcode.ATOM_ADD: _make_atomic,
    Opcode.ATOM_MIN: _make_atomic,
    Opcode.ATOM_MAX: _make_atomic,
    Opcode.ATOM_OR: _make_atomic,
    Opcode.ATOM_EXCH: _make_atomic,
    Opcode.ATOM_CAS: _make_atomic,
    Opcode.BRA: _make_bra,
    Opcode.JOIN: _make_join,
    Opcode.NOP: _make_join,
    Opcode.BAR: _make_bar,
    Opcode.EXIT: _make_exit,
}


def _make_ref(instr, handler):
    """Fallback: adapt a reference ``Warp`` handler to the decoded form."""

    def run(w, frame, cycle):
        return handler(w, instr, frame, frame[2], cycle)

    return run


def decode_program(program) -> tuple:
    """Decode a finalized program into (kernel table, n_int, n_flt).

    The table holds one ``(closure, opcode)`` pair per pc; the result is
    cached on the program, so all warps of all launches share one decode.
    """
    cached = getattr(program, "_fast_table", None)
    if cached is not None:
        return cached
    table: List[tuple] = []
    for instr in program.instructions:
        op = instr.op
        builder = _BUILDERS.get(op)
        run = builder(instr) if builder is not None else None
        if run is None:
            run = _make_ref(instr, _DISPATCH[op])
        table.append((run, op))
    highest = program.max_register_index()
    cached = (table, highest["int"] + 1, highest["flt"] + 1)
    program._fast_table = cached
    return cached


class FastWarp(Warp):
    """Warp with pre-decoded instruction kernels and extended frames."""

    __slots__ = ("_table", "_alu_lat", "_sfu_lat")

    def __init__(self, tb, warp_index: int, context_slot: int) -> None:
        gpu = tb.gpu
        func = tb.func
        self.tb = tb
        self.warp_index = warp_index
        self.context_slot = context_slot
        self.hw_slot_base = tb.smx.smx_id * 157 + context_slot * WARP_SIZE
        self.age = 0
        self._gpu = gpu
        self._instrs = func.program.instructions
        self._mem_i = gpu.memory.i
        self._mem_f = gpu.memory.f
        self._mem_size = gpu.memory.size_words
        self._stats = gpu.stats
        self._cfg = gpu.config
        self._lat = gpu.latency
        self._san = gpu.sanitizer
        self._alu_lat = gpu.config.alu_latency
        self._sfu_lat = gpu.config.sfu_latency

        table, n_int, n_flt = decode_program(func.program)
        self._table = table
        self.regs_i = np.zeros((n_int, WARP_SIZE), dtype=np.int64)
        self.regs_f = np.zeros((n_flt, WARP_SIZE), dtype=np.float64)

        bx, by, _bz = tb.block_dims
        threads = tb.block_threads
        init_mask, tid_x, tid_y, tid_z, clamped, active = _geometry(
            bx, by, threads, warp_index
        )
        self.init_mask = init_mask
        self.tid_x = tid_x
        self.tid_y = tid_y
        self.tid_z = tid_z
        self.gtid = tb.block_linear_index * threads + clamped

        self.stack = [[0, -1, init_mask, active, active == WARP_SIZE]]
        self.ready_cycle = 0
        self.finished = False
        self.at_barrier = False

    def step(self, cycle: int) -> None:
        """Execute one decoded instruction for the active frame's lanes."""
        stack = self.stack
        frame = stack[-1]
        while len(stack) > 1 and frame[1] >= 0 and frame[0] == frame[1]:
            stack.pop()
            frame = stack[-1]
        pc = frame[0]
        try:
            run, op = self._table[pc]
        except IndexError:
            raise ExecutionError(
                f"warp ran off the end of kernel {self.tb.func.name!r} at pc={pc}"
            ) from None
        stats = self._stats
        stats.issued_instructions += 1
        stats.active_lane_sum += frame[3]
        tracer = self._gpu.tracer
        if tracer is not None:
            tracer.on_issue(self, pc, op, frame[3], cycle)
        if self._san is not None:
            self._san.observe(self, pc, self._instrs[pc], frame[2], cycle)
        if not run(self, frame, cycle):
            frame[0] = pc + 1
