"""Execution tracing and profiling hooks.

A :class:`Tracer` attached to a :class:`~repro.sim.gpu.GPU` (or via
``Device.attach_tracer``) observes every issued warp instruction.  Two
implementations ship:

* :class:`OpcodeProfiler` — per-kernel, per-opcode issue histograms plus
  active-lane counts: a lightweight profiler for kernel tuning;
* :class:`InstructionTrace` — a bounded ring of (cycle, smx, kernel, pc,
  opcode, active) records for debugging execution order.

Tracing costs one attribute check per issued instruction when disabled.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..config import WARP_SIZE
from ..isa.instructions import Opcode

if TYPE_CHECKING:  # pragma: no cover
    from .warp import Warp


class Tracer:
    """Base tracer: subclass and override :meth:`on_issue`."""

    #: Whether this tracer's output is invariant under the vector core's
    #: cross-warp group dispatch.  Grouping preserves every instruction's
    #: issue cycle and active-lane count but reorders *callbacks* (a
    #: whole group is reported at once, warp-major instead of
    #: time-major), so only order-insensitive tracers — aggregating
    #: profilers — may opt in.  While the installed tracer reports
    #: ``False`` (the default; e.g. :class:`InstructionTrace`, which
    #: records callback order), the vector core disables grouping and
    #: runs warps one at a time, keeping output identical to the other
    #: cores.
    group_safe = False

    def on_issue(self, warp: "Warp", pc: int, opcode: Opcode, active: int, cycle: int) -> None:
        raise NotImplementedError

    def on_group(self, warps, pc: int, region, starts, actives) -> None:
        """A warp group executed one vector row in one call (vector core).

        ``warps``, ``starts`` and ``actives`` are parallel sequences: each
        warp began the row (``region.ops``, starting at ``pc``) at its own
        issue cycle with its own active-lane count — unlike fusion,
        grouping does not require a full mask.  The default replays
        per-instruction :meth:`on_issue` callbacks at the exact cycles
        ungrouped execution would have issued them, warp-major.
        """
        for warp, start, active in zip(warps, starts, actives):
            alu = warp._alu_lat
            sfu = warp._sfu_lat
            c = start
            for i, opcode in enumerate(region.ops):
                self.on_issue(warp, pc + i, opcode, active, c)
                c += sfu if region.sfu_flags[i] else alu

    def on_fused(self, warp: "Warp", pc: int, region, cycle: int) -> None:
        """A fused superblock region executed in one call (fast core).

        The default replays the region as per-instruction
        :meth:`on_issue` callbacks at the exact cycles unfused execution
        would have issued them (fusion only runs with a full mask, so
        ``active`` is the warp width), keeping every subclass's output
        identical whether or not fusion engaged.  Profilers that want to
        see regions as units override this instead.
        """
        alu = warp._alu_lat
        sfu = warp._sfu_lat
        c = cycle
        for i, opcode in enumerate(region.ops):
            self.on_issue(warp, pc + i, opcode, WARP_SIZE, c)
            c += sfu if region.sfu_flags[i] else alu


@dataclass
class KernelProfile:
    """Aggregated issue counts for one kernel."""

    issues: int = 0
    active_lanes: int = 0
    by_opcode: Dict[Opcode, int] = field(default_factory=dict)

    @property
    def warp_activity_pct(self) -> float:
        from ..config import WARP_SIZE

        if not self.issues:
            return 0.0
        return 100.0 * self.active_lanes / (self.issues * WARP_SIZE)

    def top_opcodes(self, n: int = 5) -> List[Tuple[Opcode, int]]:
        return sorted(self.by_opcode.items(), key=lambda kv: -kv[1])[:n]


class OpcodeProfiler(Tracer):
    """Per-kernel opcode histograms."""

    #: Pure aggregation — callback order is irrelevant, so the default
    #: :meth:`Tracer.on_group` replay keeps counts exact under grouping.
    group_safe = True

    def __init__(self) -> None:
        self.kernels: Dict[str, KernelProfile] = {}

    def on_issue(self, warp, pc, opcode, active, cycle) -> None:
        name = warp.tb.func.name
        profile = self.kernels.get(name)
        if profile is None:
            profile = self.kernels[name] = KernelProfile()
        profile.issues += 1
        profile.active_lanes += active
        profile.by_opcode[opcode] = profile.by_opcode.get(opcode, 0) + 1

    def report(self) -> str:
        lines = []
        for name, profile in sorted(self.kernels.items()):
            lines.append(
                f"{name}: {profile.issues} issues, "
                f"{profile.warp_activity_pct:.1f}% warp activity"
            )
            for opcode, count in profile.top_opcodes():
                lines.append(f"    {opcode.name.lower():14s} {count}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TraceRecord:
    cycle: int
    smx: int
    kernel: str
    pc: int
    opcode: Opcode
    active: int


class InstructionTrace(Tracer):
    """Bounded ring buffer of issued instructions."""

    def __init__(self, capacity: int = 10_000) -> None:
        self.records: Deque[TraceRecord] = collections.deque(maxlen=capacity)

    def on_issue(self, warp, pc, opcode, active, cycle) -> None:
        self.records.append(
            TraceRecord(
                cycle=cycle,
                smx=warp.tb.smx.smx_id,
                kernel=warp.tb.func.name,
                pc=pc,
                opcode=opcode,
                active=active,
            )
        )

    def of_kernel(self, name: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kernel == name]

    def format(self, limit: Optional[int] = 50) -> str:
        records = list(self.records)
        if limit is not None:
            records = records[-limit:]
        return "\n".join(
            f"{r.cycle:>10d}  smx{r.smx:<2d} {r.kernel:<16s} pc={r.pc:<4d} "
            f"{r.opcode.name.lower():<14s} active={r.active}"
            for r in records
        )
