"""The Streaming Multiprocessor (SMX): resources and warp scheduling.

Resources (Table 2 limits): resident thread blocks, resident threads,
registers, shared memory, and warp-context slots.  The warp scheduler is
greedy-then-oldest (GTO, [Rogers et al. MICRO'12]); under this simulator's
in-order dependent-issue model a warp is never ready again in the cycle it
issued, so GTO reduces to oldest-ready-first, implemented as a lazy-deletion
min-heap keyed by (ready_cycle, age).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional

from ..config import WORD_BYTES
from ..errors import LaunchError
from ..memory.cache import Cache
from .kernel import KernelFunction, LaunchDims, dims_total
from .thread_block import ThreadBlock
from .warp import Warp

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU


class SMX:
    """One streaming multiprocessor."""

    def __init__(self, smx_id: int, gpu: "GPU") -> None:
        self.smx_id = smx_id
        self.gpu = gpu
        cfg = gpu.config
        self._cfg = cfg
        self.free_threads = cfg.max_resident_threads
        self.free_blocks = cfg.max_resident_blocks
        self.free_regs = cfg.registers_per_smx
        self.free_shared = cfg.shared_mem_size
        self.free_warp_slots = cfg.max_resident_warps
        self.blocks: List[ThreadBlock] = []
        self.resident_warps = 0
        self._ready_heap: list = []
        # Plain int age counter (not itertools.count) so checkpoints can
        # serialize and restore it exactly.
        self._seq = 0
        #: Free warp-context slots; a resident warp owns one slot, which
        #: also determines its hardware thread indices and local-memory
        #: segment.
        self._free_slots: List[int] = list(range(cfg.max_resident_warps - 1, -1, -1))
        #: Per-SMX L1 (local-memory cache on this Kepler-like baseline).
        self.l1 = Cache(cfg.l1_size, cfg.l2_line, cfg.l1_assoc)

    # ------------------------------------------------------------------
    # Resource admission
    # ------------------------------------------------------------------
    def can_accept(self, func: KernelFunction, block_dims: LaunchDims) -> bool:
        threads = dims_total(block_dims)
        warps = func.warps_per_block(block_dims)
        return (
            self.free_blocks >= 1
            and self.free_threads >= threads
            and self.free_warp_slots >= warps
            and self.free_regs >= threads * func.regs_per_thread
            and self.free_shared >= func.shared_words * WORD_BYTES
            and func.local_words <= self._cfg.max_local_words
        )

    def add_block(
        self,
        func: KernelFunction,
        grid_dims: LaunchDims,
        block_dims: LaunchDims,
        block_linear_index: int,
        param_addr: int,
        kde_entry,
        age,
        cycle: int,
    ) -> ThreadBlock:
        if not self.can_accept(func, block_dims):
            raise LaunchError(
                f"SMX {self.smx_id} cannot accept a block of kernel {func.name!r}"
            )
        threads = dims_total(block_dims)
        warps = func.warps_per_block(block_dims)
        self.free_blocks -= 1
        self.free_threads -= threads
        self.free_warp_slots -= warps
        self.free_regs -= threads * func.regs_per_thread
        self.free_shared -= func.shared_words * WORD_BYTES

        # Hardware thread index of the block's first lane.  The SMX id is
        # folded in so that identical warp slots on different SMXs hash to
        # different AGT entries (see DESIGN.md; the paper's per-SMX hw_tid
        # would alias systematically across SMXs in a shared AGT).
        slots = [self._free_slots.pop() for _ in range(warps)]
        # Context setup: the first block of a kernel not already resident
        # on this SMX pays function-load / partitioning setup; co-resident
        # blocks of the same kernel (native or coalesced aggregated TBs)
        # share the context (Section 4.2's coalescing benefit).
        start_cycle = cycle
        if self._cfg.context_setup_cycles and not any(
            tb.func is func for tb in self.blocks
        ):
            start_cycle += self._cfg.context_setup_cycles
        tb = ThreadBlock(
            self,
            func,
            grid_dims,
            block_dims,
            block_linear_index,
            param_addr,
            kde_entry,
            age,
            slots,
        )
        if self.gpu.sanitizer is not None:
            self.gpu.sanitizer.on_block_start(tb, start_cycle)
        self.blocks.append(tb)
        self.resident_warps += len(tb.warps)
        self.gpu.active_warps += len(tb.warps)
        gheap = self.gpu._gheap
        smx_id = self.smx_id
        for warp in tb.warps:
            warp.ready_cycle = start_cycle
            warp.age = self._seq
            self._seq += 1
            if gheap is not None:
                heapq.heappush(
                    gheap, (start_cycle, smx_id, start_cycle, warp.age, warp)
                )
            else:
                heapq.heappush(self._ready_heap, (start_cycle, warp.age, warp))
        self.gpu._notify_smx_ready(self.smx_id, start_cycle)
        return tb

    # ------------------------------------------------------------------
    # Warp lifecycle callbacks
    # ------------------------------------------------------------------
    def requeue_warp(self, warp: Warp) -> None:
        """Re-arm a warp released from a barrier."""
        gheap = self.gpu._gheap
        if gheap is not None:
            heapq.heappush(
                gheap,
                (warp.ready_cycle, self.smx_id, warp.ready_cycle, warp.age, warp),
            )
        else:
            heapq.heappush(self._ready_heap, (warp.ready_cycle, warp.age, warp))
        self.gpu._notify_smx_ready(self.smx_id, warp.ready_cycle)

    def warp_retired(self, warp: Warp, cycle: int) -> None:
        self.resident_warps -= 1
        self.gpu.active_warps -= 1

    def block_finished(self, tb: ThreadBlock, cycle: int) -> None:
        threads = tb.block_threads
        warps = len(tb.warps)
        self.free_blocks += 1
        self.free_threads += threads
        self.free_warp_slots += warps
        self.free_regs += threads * tb.func.regs_per_thread
        self.free_shared += tb.func.shared_words * WORD_BYTES
        for warp in tb.warps:
            self._free_slots.append(warp.context_slot)
        if self.gpu.vector_core:
            for warp in tb.warps:
                warp.release_slab()
        self.blocks.remove(tb)
        if self.gpu.sanitizer is not None:
            self.gpu.sanitizer.on_block_finished(tb, cycle)
        self.gpu.stats.blocks_completed += 1
        self.gpu.scheduler.on_block_complete(tb, cycle)

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> int:
        """Issue up to ``issue_width`` instructions from ready warps.

        Under "gto" the heap key keeps a warp's original age, yielding
        oldest-ready-first (GTO's behaviour under this simulator's
        dependent-issue model, where the greedy warp is never ready again
        in its issue cycle).  Under "rr" an issued warp is re-aged to the
        back of the queue, giving a loose round-robin.
        """
        heap = self._ready_heap
        issued = 0
        budget = self._cfg.issue_width
        round_robin = self._cfg.warp_scheduler == "rr"
        while heap and issued < budget:
            ready_cycle, age, warp = heap[0]
            if warp.finished or warp.at_barrier or ready_cycle != warp.ready_cycle:
                heapq.heappop(heap)  # stale entry
                continue
            if ready_cycle > cycle:
                break
            heapq.heappop(heap)
            warp.step(cycle)
            issued += 1
            if not warp.finished and not warp.at_barrier:
                if round_robin:
                    warp.age = self._seq
                    self._seq += 1
                heapq.heappush(heap, (warp.ready_cycle, warp.age, warp))
        return issued

    def next_ready_cycle(self) -> Optional[int]:
        """Earliest cycle any resident warp can issue, or None if idle."""
        heap = self._ready_heap
        while heap:
            ready_cycle, age, warp = heap[0]
            if warp.finished or warp.at_barrier or ready_cycle != warp.ready_cycle:
                heapq.heappop(heap)
                continue
            return ready_cycle
        return None
