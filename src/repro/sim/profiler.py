"""Hot-path profiler: simulated issues and host wall-time per opcode and
per fused superblock region.

:class:`HotPathProfiler` is a :class:`~repro.sim.tracing.Tracer` that
both CLIs expose as ``--profile``.  It answers the two questions perf
work on the simulator keeps asking:

* *where do the simulated instructions go?* — per-opcode issue and
  active-lane counts whose totals match ``SimStats.issued_instructions``
  / ``active_lane_sum`` exactly (fused regions are expanded into their
  member opcodes);
* *where does the host CPU time go?* — wall-time between consecutive
  tracer callbacks, attributed to the previously issued opcode (or fused
  region).  This is a sampling-free, low-overhead attribution: it folds
  the scheduler/bookkeeping cost that follows an instruction into that
  instruction, which is exactly the per-dispatch overhead superblock
  fusion removes, so fused regions show up as fewer, cheaper entries.

Because a profiler must follow every GPU a workload constructs (the
harness builds devices deep inside ``Workload.execute``), the module
also keeps one process-global *active* profiler: while installed via
:func:`activate`, every new :class:`~repro.sim.gpu.GPU` attaches it as
its tracer.  Simulation results are bit-identical with or without it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..config import WARP_SIZE
from ..isa.instructions import Opcode
from .tracing import Tracer


class OpcodeCost:
    """Aggregated per-opcode counters."""

    __slots__ = ("issues", "lanes", "host_seconds", "fused_issues")

    def __init__(self) -> None:
        self.issues = 0
        self.lanes = 0
        self.host_seconds = 0.0
        #: Of ``issues``, how many were executed inside a fused region.
        self.fused_issues = 0


class RegionCost:
    """Aggregated counters for one fused region (kernel, start pc)."""

    __slots__ = ("kernel", "start", "length", "ops", "executions", "host_seconds")

    def __init__(self, kernel: str, start: int, length: int, ops: Tuple[Opcode, ...]) -> None:
        self.kernel = kernel
        self.start = start
        self.length = length
        self.ops = ops
        self.executions = 0
        self.host_seconds = 0.0


class HotPathProfiler(Tracer):
    """Attribute simulated issues and host wall-time to opcodes/regions."""

    #: All counters are order-insensitive sums, so the vector core may
    #: keep grouping enabled while profiling; :meth:`on_group` folds a
    #: whole group into the aggregates in one call.
    group_safe = True

    def __init__(self, clock=time.perf_counter) -> None:
        self.opcodes: Dict[Opcode, OpcodeCost] = {}
        self.regions: Dict[Tuple[str, int], RegionCost] = {}
        #: Total instructions issued through fused regions.
        self.fused_instructions = 0
        #: Total fused-region executions (one per region entry).
        self.fused_executions = 0
        #: Total instructions issued through vector-core group dispatch
        #: (a subset of the issue total; multi-op group rows also count
        #: toward the fused totals so region accounting stays closed).
        self.group_instructions = 0
        #: Total group-dispatch batch executions (one per row per group).
        self.group_executions = 0
        self._clock = clock
        self._prev: Optional[object] = None  # OpcodeCost | RegionCost
        self._prev_t: float = 0.0

    # ------------------------------------------------------------------
    # Tracer hooks
    # ------------------------------------------------------------------
    def _charge(self, entry) -> None:
        now = self._clock()
        prev = self._prev
        if prev is not None:
            prev.host_seconds += now - self._prev_t
        self._prev = entry
        self._prev_t = now

    def on_issue(self, warp, pc, opcode, active, cycle) -> None:
        cost = self.opcodes.get(opcode)
        if cost is None:
            cost = self.opcodes[opcode] = OpcodeCost()
        cost.issues += 1
        cost.lanes += active
        self._charge(cost)

    def on_fused(self, warp, pc, region, cycle) -> None:
        # Expand the region into its member opcodes so per-opcode issue
        # and lane totals stay equal to SimStats regardless of fusion,
        # but attribute host time to the region as a unit.
        opcodes = self.opcodes
        for opcode in region.ops:
            cost = opcodes.get(opcode)
            if cost is None:
                cost = opcodes[opcode] = OpcodeCost()
            cost.issues += 1
            cost.lanes += WARP_SIZE
            cost.fused_issues += 1
        self.fused_instructions += region.length
        self.fused_executions += 1
        key = (warp.tb.func.name, region.start)
        rcost = self.regions.get(key)
        if rcost is None:
            rcost = self.regions[key] = RegionCost(
                key[0], region.start, region.length, region.ops
            )
        rcost.executions += 1
        self._charge(rcost)

    def on_group(self, warps, pc, region, starts, actives) -> None:
        # One batch over g warps: every warp issued every member opcode
        # with its own active-lane count, so per-opcode issue/lane totals
        # stay equal to SimStats.  Multi-op rows reuse the fused-region
        # accounting (executions += g keeps the executions x length
        # identity) with host time attributed to the region as a unit;
        # single-op rows are plain issues.
        g = len(warps)
        n_lanes = sum(actives)
        opcodes = self.opcodes
        self.group_instructions += region.length * g
        self.group_executions += 1
        if region.length == 1:
            opcode = region.ops[0]
            cost = opcodes.get(opcode)
            if cost is None:
                cost = opcodes[opcode] = OpcodeCost()
            cost.issues += g
            cost.lanes += n_lanes
            self._charge(cost)
            return
        for opcode in region.ops:
            cost = opcodes.get(opcode)
            if cost is None:
                cost = opcodes[opcode] = OpcodeCost()
            cost.issues += g
            cost.lanes += n_lanes
            cost.fused_issues += g
        self.fused_instructions += region.length * g
        self.fused_executions += g
        key = (warps[0].tb.func.name, region.start)
        rcost = self.regions.get(key)
        if rcost is None:
            rcost = self.regions[key] = RegionCost(
                key[0], region.start, region.length, region.ops
            )
        rcost.executions += g
        self._charge(rcost)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_issues(self) -> int:
        return sum(cost.issues for cost in self.opcodes.values())

    @property
    def total_lanes(self) -> int:
        return sum(cost.lanes for cost in self.opcodes.values())

    def to_dict(self) -> dict:
        """JSON-ready report (the ``--profile`` machine format)."""
        return {
            "total_issues": self.total_issues,
            "total_lanes": self.total_lanes,
            "fused_instructions": self.fused_instructions,
            "fused_executions": self.fused_executions,
            "group_instructions": self.group_instructions,
            "group_executions": self.group_executions,
            "opcodes": {
                opcode.name.lower(): {
                    "issues": cost.issues,
                    "fused_issues": cost.fused_issues,
                    "lanes": cost.lanes,
                    "host_seconds": cost.host_seconds,
                }
                for opcode, cost in sorted(
                    self.opcodes.items(), key=lambda kv: -kv[1].issues
                )
            },
            "regions": [
                {
                    "kernel": cost.kernel,
                    "start_pc": cost.start,
                    "length": cost.length,
                    "ops": [op.name.lower() for op in cost.ops],
                    "executions": cost.executions,
                    "host_seconds": cost.host_seconds,
                }
                for cost in sorted(
                    self.regions.values(), key=lambda c: -c.executions
                )
            ],
        }

    def report(self, top: int = 15) -> str:
        """Human-readable hot-path table."""
        total = self.total_issues
        host_total = sum(c.host_seconds for c in self.opcodes.values()) + sum(
            c.host_seconds for c in self.regions.values()
        )
        lines: List[str] = []
        lines.append("== hot-path profile ==")
        lines.append(
            f"issues {total:,}   fused {self.fused_instructions:,} "
            f"({100.0 * self.fused_instructions / total if total else 0.0:.1f}%) "
            f"in {self.fused_executions:,} region executions   "
            f"host {host_total * 1e3:.1f}ms attributed"
        )
        if self.group_instructions:
            lines.append(
                f"grouped {self.group_instructions:,} "
                f"({100.0 * self.group_instructions / total if total else 0.0:.1f}%) "
                f"in {self.group_executions:,} batch executions (vector core)"
            )
        lines.append(f"{'opcode':<14s} {'issues':>12s} {'fused%':>7s} "
                     f"{'lanes/issue':>11s} {'host_ms':>9s} {'issue%':>7s}")
        by_issues = sorted(self.opcodes.items(), key=lambda kv: -kv[1].issues)
        for opcode, cost in by_issues[:top]:
            lines.append(
                f"{opcode.name.lower():<14s} {cost.issues:>12,} "
                f"{100.0 * cost.fused_issues / cost.issues:>6.1f}% "
                f"{cost.lanes / cost.issues:>11.1f} "
                f"{cost.host_seconds * 1e3:>9.1f} "
                f"{100.0 * cost.issues / total if total else 0.0:>6.1f}%"
            )
        if len(by_issues) > top:
            rest = sum(cost.issues for _, cost in by_issues[top:])
            lines.append(f"{'(other)':<14s} {rest:>12,}")
        if self.regions:
            lines.append("-- fused regions --")
            lines.append(f"{'kernel:pc':<24s} {'len':>4s} {'execs':>10s} "
                         f"{'instrs':>12s} {'host_ms':>9s}")
            by_execs = sorted(self.regions.values(), key=lambda c: -c.executions)
            for cost in by_execs[:top]:
                label = f"{cost.kernel}:{cost.start}"
                lines.append(
                    f"{label:<24s} {cost.length:>4d} {cost.executions:>10,} "
                    f"{cost.executions * cost.length:>12,} "
                    f"{cost.host_seconds * 1e3:>9.1f}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-global activation (used by the CLIs' --profile)
# ----------------------------------------------------------------------
_ACTIVE: Optional[HotPathProfiler] = None


def activate(profiler: Optional[HotPathProfiler] = None) -> HotPathProfiler:
    """Install a profiler as the tracer of every subsequently built GPU.

    Returns the installed instance (a fresh one when not supplied).
    Counts aggregate across all simulations run while active; only
    in-process simulations are observed, so callers should pin
    ``jobs=1`` and bypass result caches for the profiled run.
    """
    global _ACTIVE
    _ACTIVE = profiler if profiler is not None else HotPathProfiler()
    return _ACTIVE


def deactivate() -> None:
    """Uninstall the process-global profiler."""
    global _ACTIVE
    _ACTIVE = None


def active_profiler() -> Optional[HotPathProfiler]:
    """The installed profiler, or ``None`` (read by ``GPU.__init__``)."""
    return _ACTIVE
