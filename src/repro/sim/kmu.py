"""The Kernel Management Unit (KMU).

The KMU inspects the HWQ heads and the queue of device-launched kernels
and dispatches them — one at a time, each taking the kernel-dispatch
latency (Table 3: 283 cycles) — into free Kernel Distributor entries.
Device-side launches (CDP, or DTBL fall-back launches when no eligible
kernel exists) arrive through :meth:`enqueue_device`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from .hwq import HostLaunchSpec, HostQueues
from .stats import LaunchKind, LaunchRecord

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU


class DeviceLaunchSpec:
    """A device-launched kernel pending in the KMU."""

    __slots__ = ("kernel_name", "grid_dims", "block_dims", "param_addr", "record")

    def __init__(self, kernel_name, grid_dims, block_dims, param_addr, record):
        self.kernel_name = kernel_name
        self.grid_dims = grid_dims
        self.block_dims = block_dims
        self.param_addr = param_addr
        self.record = record


class KernelManagementUnit:
    """Dispatches pending kernels into the Kernel Distributor."""

    def __init__(self, gpu: "GPU") -> None:
        self._gpu = gpu
        self.host_queues = HostQueues(gpu.config.max_concurrent_kernels)
        self.device_pending: Deque[DeviceLaunchSpec] = deque()
        self._busy_until = 0
        self._dispatch_scheduled = False
        #: KDE entries promised to in-flight dispatch activations.
        self._reserved_entries = 0

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        host = sum(len(hwq.pending) for hwq in self.host_queues.hwqs)
        return host + len(self.device_pending)

    def enqueue_host(self, spec: HostLaunchSpec) -> None:
        self.host_queues.enqueue(spec)
        self.try_dispatch(self._gpu.cycle)

    def enqueue_device(self, spec: DeviceLaunchSpec) -> None:
        self.device_pending.append(spec)
        self.try_dispatch(self._gpu.cycle)

    # ------------------------------------------------------------------
    def _kde_available(self) -> bool:
        distributor = self._gpu.distributor
        return distributor.occupied + self._reserved_entries < distributor.num_entries

    def try_dispatch(self, cycle: int) -> None:
        """Dispatch as many pending kernels as latency and KDE space allow."""
        gpu = self._gpu
        latency = gpu.latency.kernel_dispatch
        while self._kde_available():
            if cycle < self._busy_until:
                self._schedule_retry(self._busy_until)
                return
            spec = self._pick_next()
            if spec is None:
                return
            if latency:
                self._busy_until = cycle + latency
                # Reserve the KDE entry now: other dispatch decisions made
                # before this activation lands must not count on it.
                self._reserved_entries += 1
                gpu.schedule_event(
                    self._busy_until, kind="kmu_activate", payload=spec
                )
                # Serialize: the next dispatch begins after this one lands.
                self._schedule_retry(self._busy_until)
                return
            self._activate(spec, cycle)

    def _pick_next(self):
        # Device-launched (and suspended) kernels and host HWQ heads are
        # dispatched in arrival order; we alternate with device first since
        # dynamic launches are latency-critical for the paper's workloads.
        if self.device_pending:
            spec = self.device_pending.popleft()
            return spec
        host = self.host_queues.next_dispatchable()
        if host is not None:
            self.host_queues.mark_dispatched(host)
            return host
        return None

    def _make_activator(self, spec):
        def activate(cycle: int) -> None:
            self._reserved_entries -= 1
            self._activate(spec, cycle)

        return activate

    def _activate(self, spec, cycle: int) -> None:
        gpu = self._gpu
        func = gpu.kernels[spec.kernel_name]
        if isinstance(spec, HostLaunchSpec):
            record = LaunchRecord(
                kind=LaunchKind.HOST_KERNEL,
                kernel_name=spec.kernel_name,
                launch_cycle=cycle,
                total_blocks=_total(spec.grid_dims),
                total_threads=_total(spec.grid_dims) * _total(spec.block_dims),
            )
            gpu.stats.launches.append(record)
            spec.record = record
            stream_id: Optional[int] = spec.stream_id
        else:
            record = spec.record
            stream_id = None
        entry = gpu.distributor.allocate(
            func, spec.grid_dims, spec.block_dims, spec.param_addr, record, stream_id
        )
        gpu.scheduler.mark(entry, cycle)

    def _make_retry(self):
        def retry(when: int) -> None:
            self._dispatch_scheduled = False
            self.try_dispatch(when)

        return retry

    def _schedule_retry(self, cycle: int) -> None:
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self._gpu.schedule_event(cycle, kind="kmu_retry")


def _total(dims) -> int:
    return dims[0] * dims[1] * dims[2]
