"""Shared fixtures for the figure/table regeneration benches.

The full (benchmark x mode) grid is simulated once per pytest session and
shared by every figure bench through the runner's per-process cache; each
bench then derives its figure, prints the regenerated rows next to the
paper's expectation, and asserts the qualitative shape.

Environment knobs:

* ``REPRO_BENCH_SCALE``         dataset scale (default 1.0)
* ``REPRO_BENCH_LATENCY_SCALE`` launch-latency scale (default 0.25)
* ``REPRO_BENCH_CORE``          execution core (reference/fast/vector;
  default: the config's default core)
* ``REPRO_BENCH_EXPORT_DIR``    if set, write every grid figure as CSV +
  a combined experiments.json into this directory at session end
"""

import dataclasses
import os

import pytest

from repro.config import GPUConfig
from repro.harness.runner import DEFAULT_LATENCY_SCALE, run_grid

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_LATENCY_SCALE = float(
    os.environ.get("REPRO_BENCH_LATENCY_SCALE", str(DEFAULT_LATENCY_SCALE))
)
BENCH_CORE = os.environ.get("REPRO_BENCH_CORE")
EXPORT_DIR = os.environ.get("REPRO_BENCH_EXPORT_DIR")


def bench_config():
    """The grid's GPU configuration, honouring ``REPRO_BENCH_CORE``."""
    if BENCH_CORE:
        return dataclasses.replace(GPUConfig.k20c(), core=BENCH_CORE)
    return None  # runner default (K20c with the default core)


@pytest.fixture(scope="session")
def grid():
    """The full evaluation grid, simulated once per session."""
    result = run_grid(
        scale=BENCH_SCALE,
        latency_scale=BENCH_LATENCY_SCALE,
        config=bench_config(),
    )
    yield result
    if EXPORT_DIR:
        from repro.harness.experiments import (
            figure6_warp_activity,
            figure7_dram_efficiency,
            figure8_smx_occupancy,
            figure9_waiting_time,
            figure10_memory_footprint,
            figure11_speedup,
        )
        from repro.harness.export import write_experiments

        experiments = [
            fn(result)
            for fn in (
                figure6_warp_activity,
                figure7_dram_efficiency,
                figure8_smx_occupancy,
                figure9_waiting_time,
                figure10_memory_footprint,
                figure11_speedup,
            )
        ]
        paths = write_experiments(experiments, EXPORT_DIR)
        print(f"\n[exported {len(paths)} result files to {EXPORT_DIR}]")


def show(experiment) -> None:
    """Print a regenerated experiment (visible with pytest -s)."""
    print()
    print(experiment.render())
