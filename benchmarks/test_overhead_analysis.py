"""Section 4.3: DTBL hardware overhead (AGT SRAM + extension registers),
plus the eligible-kernel match-rate claim (~98% under dense launching)."""

from repro import ExecutionMode
from repro.config import GPUConfig
from repro.harness.experiments import overhead_analysis

from .conftest import BENCH_LATENCY_SCALE, BENCH_SCALE, show


def test_overhead(benchmark):
    experiment = benchmark.pedantic(overhead_analysis, rounds=1, iterations=1)
    show(experiment)
    assert experiment.summary["AGT SRAM bytes"] == 20 * 1024  # 20KB @ 1024 entries
    assert experiment.summary["extra register bytes"] == 1096
    # About 0.5% of SMX storage (paper Section 4.3).
    rows = dict((row[0], row[1]) for row in experiment.rows)
    assert rows["Fraction of SMX storage"] < 0.01


def test_eligible_match_rate(grid, benchmark):
    """Section 4.2: aggregated groups match an eligible kernel ~98% of the
    time; mismatches occur early, before device kernels fill the KDE."""
    dense = ["amr", "join_gaussian", "regx_string", "bht"]

    def collect():
        return [
            grid.get(name, ExecutionMode.DTBL_IDEAL).stats.agg_match_rate
            for name in dense
        ]

    rates = benchmark.pedantic(collect, rounds=1, iterations=1)
    print("\neligible-kernel match rates (ideal latency):", rates)
    assert sum(rates) / len(rates) > 0.9
