"""Figure 9: average waiting time of a dynamic kernel / aggregated group.

Paper shape: DTBL reduces launch-to-execution waiting time versus CDP
(ideal -18.8%, with latency -24.1%); regx_string (highest DFP density)
improves the most.
"""

from repro.harness.experiments import figure9_waiting_time

from .conftest import show


def test_fig09(grid, benchmark):
    experiment = benchmark.pedantic(
        figure9_waiting_time, args=(grid,), rounds=1, iterations=1
    )
    show(experiment)

    # DTBL waits less than CDP on average, in both latency regimes.
    assert experiment.summary["avg waiting-time change DTBL vs CDP"] < 0.0
    assert experiment.summary["avg waiting-time change DTBLI vs CDPI"] < 0.05

    rows = {row[0]: row[1:] for row in experiment.rows}
    improved = sum(1 for cdpi, dtbli, cdp, dtbl in rows.values() if dtbl <= cdp)
    assert improved >= len(rows) * 0.6  # most benchmarks improve
