"""Table 3: regenerate the CDP/DTBL latency model and verify the simulator
actually charges those latencies on the launch path."""

import numpy as np

from repro import Device, ExecutionMode, KernelBuilder, KernelFunction
from repro.config import LatencyModel
from repro.harness.experiments import table3_latency

from .conftest import show


def test_table3_values(benchmark):
    experiment = benchmark.pedantic(table3_latency, rounds=1, iterations=1)
    show(experiment)
    rows = {row[0]: row for row in experiment.rows}
    assert rows["cudaStreamCreateWithFlags (CDP only)"][1] == 7165
    assert rows["cudaGetParameterBuffer (CDP and DTBL)"][2:] == [8023, 129]
    assert rows["cudaLaunchDevice (CDP only)"][2:] == [12187, 1592]
    assert rows["Kernel dispatching"][1] == 283


def _one_thread_launch_kernel(use_dtbl: bool) -> KernelFunction:
    k = KernelBuilder("parent")
    tid = k.tid()
    param = k.param()
    with k.if_(k.eq(tid, 0)):
        buf = k.get_param_buffer(1)
        k.st(buf, k.ld(param, offset=0), offset=0)
        if use_dtbl:
            k.launch_agg("noop", buf, agg=1, block=32)
        else:
            k.stream_create()
            k.launch_device("noop", buf, grid=1, block=32)
    k.exit()
    return KernelFunction("parent", k.build())


def _noop_child() -> KernelFunction:
    k = KernelBuilder("noop")
    k.exit()
    return KernelFunction("noop", k.build())


def _single_launch_cycles(mode: ExecutionMode) -> int:
    dev = Device(mode=mode)
    dev.register(_noop_child())
    dev.register(_one_thread_launch_kernel(mode.uses_dtbl))
    out = dev.alloc(1)
    dev.launch("parent", grid=1, block=32, params=[out])
    return dev.synchronize().cycles


def test_cdp_launch_path_charges_table3(benchmark):
    """One CDP launch must cost at least stream + param + launch + dispatch."""
    lat = LatencyModel.measured_k20c()
    floor = (
        lat.stream_create
        + lat.param_buffer_cycles(1)
        + lat.launch_device_cycles(1)
        + lat.kernel_dispatch
    )
    cycles = benchmark.pedantic(
        _single_launch_cycles, args=(ExecutionMode.CDP,), rounds=1, iterations=1
    )
    assert cycles >= floor


def test_dtbl_launch_path_is_cheaper(benchmark):
    """The DTBL launch path must beat CDP's by roughly the Table 3 gap."""

    def run_pair():
        return {
            mode: _single_launch_cycles(mode)
            for mode in (ExecutionMode.CDP, ExecutionMode.DTBL)
        }

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    lat = LatencyModel.measured_k20c()
    gap = results[ExecutionMode.CDP] - results[ExecutionMode.DTBL]
    # stream_create + cudaLaunchDevice are CDP-only costs.
    assert gap >= lat.stream_create
