"""Table 4: the benchmark/input configurations must all be registered."""

from repro.harness.experiments import table4_benchmarks
from repro.workloads import benchmark_names

from .conftest import show

EXPECTED = {
    "amr",
    "bht",
    "bfs_citation",
    "bfs_usa_road",
    "bfs_cage15",
    "clr_citation",
    "clr_graph500",
    "clr_cage15",
    "regx_darpa",
    "regx_string",
    "pre_movielens",
    "join_uniform",
    "join_gaussian",
    "sssp_citation",
    "sssp_flight",
    "sssp_cage15",
}


def test_table4(benchmark):
    experiment = benchmark.pedantic(table4_benchmarks, rounds=1, iterations=1)
    show(experiment)
    assert set(benchmark_names()) == EXPECTED
    assert {row[0] for row in experiment.rows} == EXPECTED
    apps = {row[1] for row in experiment.rows}
    assert apps == {"amr", "bht", "bfs", "clr", "regx", "pre", "join", "sssp"}
