"""Ablation: DTBL vs the Section 6 software alternatives for dynamic work.

The paper positions DTBL against software schemes for dynamic
parallelism: persistent threads over a global worklist (Gupta et
al. [15]) and warp-level cooperative expansion (the Merrill-style flat
baseline).  This bench runs all four BFS formulations on the same
power-law graph:

* ``flat/thread`` — serial per-thread expansion (the naive baseline);
* ``flat/warp``   — warp-level cooperative expansion;
* ``flat/persistent`` — resident workers + software worklist;
* ``dtbl``        — hardware-launched aggregated thread blocks.

The assertable shape: DTBL beats the naive serial baseline outright, and
the persistent-threads scheme — which eliminates host round trips but
pays for its software scheduling with spin polling and worklist atomics —
lands near the serial baseline while executing several times DTBL's
instruction count.  That instruction overhead is exactly the software
cost the paper argues DTBL moves into hardware (§6).
"""

from repro import ExecutionMode
from repro.exec import JobSpec
from repro.workloads.bfs import BfsWorkload
from repro.workloads.datasets.graphs import citation_network

from .conftest import BENCH_LATENCY_SCALE


def test_dynamic_work_schemes(benchmark):
    graph = citation_network(n=1200, attach=4)

    def run_all():
        results = {}
        for key, mode, expansion in (
            ("flat/thread", ExecutionMode.FLAT, "thread"),
            ("flat/warp", ExecutionMode.FLAT, "warp"),
            ("flat/persistent", ExecutionMode.FLAT, "persistent"),
            ("dtbl", ExecutionMode.DTBL, "thread"),
        ):
            workload = BfsWorkload("bfs", mode, graph, expansion=expansion)
            spec = JobSpec(
                benchmark=f"bfs_ablation/{key}",
                mode=mode,
                scale=1.0,
                latency_scale=BENCH_LATENCY_SCALE,
            ).validate()
            results[key] = workload.execute_spec(spec).stats
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    base = results["flat/thread"].cycles
    for key, stats in results.items():
        print(
            f"  {key:16s} cycles={stats.cycles:>9,} "
            f"speedup={base / stats.cycles:5.2f} "
            f"warp_act={stats.warp_activity_pct:5.1f}% "
            f"instr={stats.issued_instructions:>8,}"
        )
    # Hardware-launched dynamic work beats naive serial expansion; the
    # software scheme stays within the same order of magnitude but pays
    # for the sequenced-ring worklist protocol (per-slot spin, claim
    # CAS, publish/finish atomics) in cycles.
    assert results["dtbl"].cycles < base
    assert results["flat/persistent"].cycles < base * 2
    # The persistent scheme executes far more instructions than DTBL for
    # the same traversal: spin polling plus worklist atomics — the
    # software-scheduling overhead DTBL moves into hardware.
    assert (
        results["flat/persistent"].issued_instructions
        > 2 * results["dtbl"].issued_instructions
    )