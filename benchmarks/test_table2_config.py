"""Table 2: regenerate the GPGPU-Sim configuration table."""

from repro.config import GPUConfig
from repro.harness.experiments import table2_configuration

from .conftest import show


def test_table2(benchmark):
    experiment = benchmark.pedantic(table2_configuration, rounds=1, iterations=1)
    show(experiment)
    values = dict((row[0], row[1]) for row in experiment.rows)
    assert values["SMX Clock Freq."] == "706MHz"
    assert values["Memory Clock Freq."] == "2600MHz"
    assert values["# of SMX"] == 13
    assert values["Max # of Resident Thread Blocks per SMX"] == 16
    assert values["Max # of Resident Threads per SMX"] == 2048
    assert values["# of 32-bit Registers per SMX"] == 65536
    assert values["L1 Cache / Shared Mem Size per SMX"] == "16KB / 48KB"
    assert values["Max # of Concurrent Kernels"] == 32
    # And the simulator really instantiates these limits.
    cfg = GPUConfig.k20c()
    assert cfg.max_resident_warps == 64
