"""Ablation: the AGT vs spilling every group descriptor to global memory.

Section 4.3 argues for the on-chip AGT against keeping aggregated-group
descriptors in global memory.  Shrinking the AGT to a single entry makes
the single-probe hash collide for essentially every concurrently pending
group, so every group pays the DRAM fetch before its TBs can distribute —
approximating the no-AGT design point.
"""

from repro import ExecutionMode
from repro.config import GPUConfig
from repro.harness.runner import run_benchmark

from .conftest import BENCH_LATENCY_SCALE, BENCH_SCALE

BENCHMARK = "amr"  # bursty nested launches: hundreds of groups pending


def test_agt_beats_global_memory_descriptors(benchmark):
    def run_pair():
        with_agt = run_benchmark(
            BENCHMARK,
            ExecutionMode.DTBL,
            scale=BENCH_SCALE,
            latency_scale=BENCH_LATENCY_SCALE,
            config=GPUConfig.k20c(),
        )
        no_agt = run_benchmark(
            BENCHMARK,
            ExecutionMode.DTBL,
            scale=BENCH_SCALE,
            latency_scale=BENCH_LATENCY_SCALE,
            config=GPUConfig.k20c().with_agt_entries(1),
        )
        return with_agt, no_agt

    with_agt, no_agt = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    slowdown = no_agt.cycles / with_agt.cycles
    print(
        f"\n{BENCHMARK}: AGT=1024 {with_agt.cycles:,} cycles | "
        f"AGT=1 (all spilled) {no_agt.cycles:,} cycles | "
        f"slowdown {slowdown:.2f}x | spills "
        f"{no_agt.stats.agt_hash_spills}/{no_agt.stats.agg_matched}"
    )
    # Spilling every descriptor must hurt: the scheduler serializes on
    # DRAM fetches at the head of the NAGEI chain.
    assert slowdown > 1.05
    assert no_agt.stats.agt_hash_spills > with_agt.stats.agt_hash_spills
