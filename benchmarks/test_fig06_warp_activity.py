"""Figure 6: warp activity percentage for flat / CDP / DTBL.

Paper shape: CDP and DTBL raise warp activity by ~10 pp on average (they
launch the same dynamic work, so their activities are nearly identical);
the biggest gains come from the heavily imbalanced inputs (amr,
join_gaussian); balanced inputs (clr_graph500) barely change and
clr_cage15 may drop slightly.
"""

from repro.harness.experiments import figure6_warp_activity

from .conftest import show


def test_fig06(grid, benchmark):
    experiment = benchmark.pedantic(
        figure6_warp_activity, args=(grid,), rounds=1, iterations=1
    )
    show(experiment)
    rows = {row[0]: row[1:] for row in experiment.rows}

    # CDP and DTBL launch identical dynamic work: activities nearly equal.
    for name, (flat, cdp, dtbl) in rows.items():
        assert abs(cdp - dtbl) < 2.0, f"{name}: CDP/DTBL activity diverged"

    # Dynamic modes raise average warp activity.
    gain = experiment.summary["avg warp-activity gain (DTBL - flat, pp)"]
    assert gain > 3.0

    # Imbalanced inputs gain the most; balanced clr_graph500 barely moves.
    assert rows["join_gaussian"][2] - rows["join_gaussian"][0] > 10.0
    assert rows["amr"][2] - rows["amr"][0] > 10.0
    assert abs(rows["clr_graph500"][2] - rows["clr_graph500"][0]) < 3.0
