"""Ablation: DTBL coalescing vs the Section 4.3 'more KDE entries'
alternative.

Section 4.3 weighs DTBL's AGT against simply enlarging the Kernel
Distributor and scheduling each aggregated group independently.  The
paper rejects the alternative: uncoalesced groups (i) mix TB
configurations on SMXs and lose the designed occupancy, (ii) repeat
per-kernel context setup, and (iii) scale KMU/FCFS hardware.  This bench
runs that design point (``dtbl_no_coalescing`` + a 256-entry KDE) against
real DTBL and checks that coalescing wins even when the alternative gets
8x the KDE capacity for free.
"""

import dataclasses

from repro import ExecutionMode
from repro.config import GPUConfig
from repro.harness.runner import run_benchmark

from .conftest import BENCH_LATENCY_SCALE, BENCH_SCALE

BENCHMARK = "amr"  # dense, self-coalescing launches


def test_coalescing_beats_enlarged_kde(benchmark):
    def run_pair():
        dtbl = run_benchmark(
            BENCHMARK,
            ExecutionMode.DTBL,
            scale=BENCH_SCALE,
            latency_scale=BENCH_LATENCY_SCALE,
            config=GPUConfig.k20c(),
        )
        alternative = run_benchmark(
            BENCHMARK,
            ExecutionMode.DTBL,
            scale=BENCH_SCALE,
            latency_scale=BENCH_LATENCY_SCALE,
            config=dataclasses.replace(
                GPUConfig.k20c(),
                dtbl_no_coalescing=True,
                max_concurrent_kernels=256,
            ),
        )
        return dtbl, alternative

    dtbl, alternative = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(
        f"\n{BENCHMARK}: DTBL (coalescing, 32 KDE) {dtbl.cycles:,} cycles | "
        f"no-coalescing + 256 KDE {alternative.cycles:,} cycles | "
        f"advantage {alternative.cycles / dtbl.cycles:.2f}x"
    )
    assert alternative.stats.agg_matched == 0  # nothing coalesced
    assert dtbl.stats.agg_match_rate > 0.5
    assert dtbl.cycles < alternative.cycles
