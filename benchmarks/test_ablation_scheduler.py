"""Ablation: warp scheduling policy (GTO vs loose round-robin).

Section 5.1 configures the greedy-then-oldest scheduler and notes DTBL is
transparent to warp scheduling.  This bench checks that transparency: the
DTBL-over-CDP advantage holds under both policies, and the policies are
close to each other for these latency-bound irregular workloads.
"""

import dataclasses

from repro import ExecutionMode
from repro.config import GPUConfig
from repro.harness.runner import run_benchmark

from .conftest import BENCH_LATENCY_SCALE, BENCH_SCALE

BENCHMARK = "bfs_citation"


def test_dtbl_advantage_is_scheduler_agnostic(benchmark):
    def run_matrix():
        results = {}
        for policy in ("gto", "rr"):
            config = dataclasses.replace(GPUConfig.k20c(), warp_scheduler=policy)
            for mode in (ExecutionMode.CDP, ExecutionMode.DTBL):
                results[(policy, mode)] = run_benchmark(
                    BENCHMARK,
                    mode,
                    scale=BENCH_SCALE,
                    latency_scale=BENCH_LATENCY_SCALE,
                    config=config,
                ).cycles
        return results

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print()
    for (policy, mode), cycles in sorted(results.items(), key=str):
        print(f"  {policy} {mode.value:5s} {cycles:,} cycles")
    for policy in ("gto", "rr"):
        cdp = results[(policy, ExecutionMode.CDP)]
        dtbl = results[(policy, ExecutionMode.DTBL)]
        assert dtbl < cdp, f"DTBL must beat CDP under {policy}"
