"""Figure 11: overall speedup over the flat implementation.

Paper shape (averages): CDPI 1.43x, DTBLI 1.63x, CDP 0.86x (a slowdown —
launch overhead eats the ideal gain), DTBL 1.21x.  Per-benchmark
landmarks: bfs_usa_road and sssp_flight barely change (too little DFP);
clr_graph500 slows down slightly under both dynamic modes (balanced input,
overhead only).
"""

from repro.harness.experiments import figure11_speedup

from .conftest import show


def test_fig11(grid, benchmark):
    experiment = benchmark.pedantic(
        figure11_speedup, args=(grid,), rounds=1, iterations=1
    )
    show(experiment)
    summary = experiment.summary
    rows = {row[0]: row[1:] for row in experiment.rows}  # CDPI, DTBLI, CDP, DTBL

    # Ordering of the averages: DTBL > 1 >= ~CDP, ideals above reals.
    assert summary["DTBL speedup (geomean)"] > 1.0
    assert summary["DTBLI speedup (geomean)"] >= summary["DTBL speedup (geomean)"]
    assert summary["CDPI speedup (geomean)"] >= summary["CDP speedup (geomean)"]
    assert summary["DTBL speedup (geomean)"] > summary["CDP speedup (geomean)"]

    # Landmark benchmarks.
    for name in ("bfs_usa_road", "sssp_flight"):
        cdpi, dtbli, cdp, dtbl = rows[name]
        assert 0.9 < dtbl < 1.1, f"{name}: expected ~no change, got {dtbl}"
    clr_g5 = rows["clr_graph500"]
    assert clr_g5[3] < 1.05, "clr_graph500 must not benefit from DTBL"

    # Per benchmark: DTBL at least matches CDP (lower launch overhead,
    # better scheduling) within noise.
    better = sum(1 for r in rows.values() if r[3] >= r[2] * 0.98)
    assert better >= len(rows) * 0.8
