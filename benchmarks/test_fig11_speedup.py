"""Figure 11: overall speedup over the flat implementation.

Paper shape (averages): CDPI 1.43x, DTBLI 1.63x, CDP 0.86x (a slowdown —
launch overhead eats the ideal gain), DTBL 1.21x.  Per-benchmark
landmarks: bfs_usa_road and sssp_flight barely change (too little DFP);
clr_graph500 slows down slightly under both dynamic modes (balanced input,
overhead only).

The grid also carries the compiler-optimized modes (CDPA, CONS); their
columns are reported but only sanity-checked here — software aggregation
trades launch count for in-kernel staging work, so its speedup shape is
workload-dependent (see docs/modes.md).
"""

from repro.harness.experiments import DYNAMIC_MODES, figure11_speedup, mode_column

from .conftest import show


def test_fig11(grid, benchmark):
    experiment = benchmark.pedantic(
        figure11_speedup, args=(grid,), rounds=1, iterations=1
    )
    show(experiment)
    summary = experiment.summary
    columns = [mode_column(mode) for mode in DYNAMIC_MODES]
    assert experiment.headers == ["benchmark"] + columns
    rows = {
        row[0]: dict(zip(columns, row[1:])) for row in experiment.rows
    }

    # Ordering of the averages: DTBL > 1 >= ~CDP, ideals above reals.
    assert summary["DTBL speedup (geomean)"] > 1.0
    assert summary["DTBLI speedup (geomean)"] >= summary["DTBL speedup (geomean)"]
    assert summary["CDPI speedup (geomean)"] >= summary["CDP speedup (geomean)"]
    assert summary["DTBL speedup (geomean)"] > summary["CDP speedup (geomean)"]

    # Landmark benchmarks.
    for name in ("bfs_usa_road", "sssp_flight"):
        dtbl = rows[name]["DTBL"]
        assert 0.9 < dtbl < 1.1, f"{name}: expected ~no change, got {dtbl}"
    assert rows["clr_graph500"]["DTBL"] < 1.05, \
        "clr_graph500 must not benefit from DTBL"

    # Per benchmark: DTBL at least matches CDP (lower launch overhead,
    # better scheduling) within noise.
    better = sum(
        1 for r in rows.values() if r["DTBL"] >= r["CDP"] * 0.98
    )
    assert better >= len(rows) * 0.8

    # Compiler-optimized modes: every benchmark produced a finite
    # positive speedup (correctness is enforced bit-exactly by the
    # runner's verify pass; the perf shape is workload-dependent).
    for name, r in rows.items():
        for column in ("CDPA", "CONS"):
            assert r[column] > 0.0, f"{name}: no {column} result"
