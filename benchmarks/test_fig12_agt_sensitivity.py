"""Figure 12: DTBL performance sensitivity to the AGT size (512/1024/2048,
normalized to 1024 entries).

Paper shape: halving the AGT to 512 slows DTBL down (avg 1.31x slowdown),
doubling to 2048 speeds it up (avg 1.20x); benchmarks with many
simultaneous aggregated groups (bht, regx) are the most sensitive.
The mechanism is the single-probe hash: a full/conflicting AGT spills
group descriptors to global memory, and the scheduler pays a DRAM fetch
before it can distribute a spilled group's thread blocks.
"""

from repro.harness.experiments import figure12_agt_sensitivity
from repro.harness.runner import DEFAULT_LATENCY_SCALE

from .conftest import BENCH_LATENCY_SCALE, BENCH_SCALE, show

#: The AGT-sensitive subset (launch-dense benchmarks) plus one control.
SENSITIVE = ["bht", "regx_string", "amr", "bfs_citation"]


def test_fig12(benchmark):
    experiment = benchmark.pedantic(
        figure12_agt_sensitivity,
        kwargs=dict(
            benchmarks=SENSITIVE,
            scale=BENCH_SCALE,
            latency_scale=BENCH_LATENCY_SCALE,
        ),
        rounds=1,
        iterations=1,
    )
    show(experiment)
    rows = {row[0]: row[1:] for row in experiment.rows}  # 512, 1024, 2048

    # Normalization sanity: the 1024 column is exactly 1.
    for name, (s512, s1024, s2048) in rows.items():
        assert abs(s1024 - 1.0) < 1e-9

    # Monotone shape on average: smaller AGT never helps, larger never hurts.
    g512 = experiment.summary["normalized speedup @ AGT 512 (geomean)"]
    g2048 = experiment.summary["normalized speedup @ AGT 2048 (geomean)"]
    assert g512 <= 1.001
    assert g2048 >= 0.999
    # And the sweep spreads: shrinking hurts more than growing helps is the
    # paper's asymmetry; at minimum the two ends must differ.
    assert g2048 >= g512
