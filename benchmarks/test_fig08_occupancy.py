"""Figure 8: SMX occupancy for CDPI / DTBLI / CDP / DTBL.

Paper shape: DTBL-Ideal beats CDP-Ideal (avg 1.24x; the fine-grained bht
gains most because CDP is capped by 32 concurrent kernels), and adding
launch latency costs CDP more occupancy than DTBL (-10.7 pp vs -5.2 pp).
"""

from repro.harness.experiments import figure8_smx_occupancy

from .conftest import show


def test_fig08(grid, benchmark):
    experiment = benchmark.pedantic(
        figure8_smx_occupancy, args=(grid,), rounds=1, iterations=1
    )
    show(experiment)
    rows = {row[0]: row[1:] for row in experiment.rows}

    # DTBLI occupancy >= CDPI on average.
    ratio = experiment.summary["DTBLI / CDPI occupancy ratio (geomean)"]
    assert ratio > 1.0

    # Launch latency hurts CDP at least as much as DTBL.
    cdp_drop = experiment.summary["avg occupancy drop CDP vs CDPI (pp)"]
    dtbl_drop = experiment.summary["avg occupancy drop DTBL vs DTBLI (pp)"]
    assert cdp_drop <= 0.5  # occupancy does not rise when latency is added
    assert dtbl_drop <= 0.5
    assert cdp_drop <= dtbl_drop + 0.5

    # bht (fine-grained children, ~warp-sized) sees a DTBLI advantage.
    cdpi, dtbli, _cdp, _dtbl = rows["bht"]
    assert dtbli >= cdpi
