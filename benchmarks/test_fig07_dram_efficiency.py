"""Figure 7: DRAM efficiency for flat / CDP / DTBL.

Paper shape: both dynamic modes raise average DRAM efficiency (CDP +0.029,
DTBL +0.053); DTBL ends at or above CDP thanks to higher occupancy; the
cage15 inputs (scattered neighbor lists) gain the most.
"""

from repro.harness.experiments import figure7_dram_efficiency
from repro.harness.reporting import mean

from .conftest import show


def test_fig07(grid, benchmark):
    experiment = benchmark.pedantic(
        figure7_dram_efficiency, args=(grid,), rounds=1, iterations=1
    )
    show(experiment)
    rows = {row[0]: row[1:] for row in experiment.rows}

    dtbl_gain = experiment.summary["avg DRAM-efficiency gain DTBL - flat"]
    assert dtbl_gain > 0.0

    # DTBL's extra occupancy gives it at least CDP-level efficiency on
    # average (paper: +0.022 over CDP).
    dtbl_vs_cdp = mean([row[2] - row[1] for row in rows.values()])
    assert dtbl_vs_cdp > -0.01

    # The imbalanced, launch-dense inputs gain clearly.  (The paper's
    # biggest gainers are the cage15 inputs; at our dataset scale the flat
    # cage15 kernels already keep the shrunken DRAM saturated, so the
    # strongest gains shift to the skewed join/regx inputs instead — see
    # EXPERIMENTS.md.)
    assert rows["join_gaussian"][2] > rows["join_gaussian"][0] + 0.02
    assert rows["regx_darpa"][2] > rows["regx_darpa"][0]

    # All efficiencies are physical.
    for name, values in rows.items():
        for value in values:
            assert 0.0 <= value <= 1.0, f"{name}: efficiency {value} out of range"
