"""Ablation: BFS flat baseline strategy (thread-serial vs warp-level).

The paper's flat BFS baseline [23] already employs warp-level vertex
expansion, which balances work within a warp without dynamic launches —
the reason BFS's CDP/DTBL gains are smaller than AMR's in Fig. 6/11.
This bench quantifies that: warp-level expansion must recover a large
part of the dynamic modes' warp-activity gain, and narrow (though not
necessarily close) the cycle gap.
"""

from repro import ExecutionMode
from repro.workloads.bfs import BfsWorkload
from repro.workloads.datasets.graphs import citation_network

from .conftest import BENCH_LATENCY_SCALE


def test_warp_expansion_narrows_the_dynamic_gap(benchmark):
    graph = citation_network(n=1200, attach=4)

    def run_all():
        results = {}
        for key, mode, expansion in (
            ("flat_thread", ExecutionMode.FLAT, "thread"),
            ("flat_warp", ExecutionMode.FLAT, "warp"),
            ("dtbl", ExecutionMode.DTBL, "thread"),
        ):
            workload = BfsWorkload("bfs", mode, graph, expansion=expansion)
            results[key] = workload.execute(latency_scale=BENCH_LATENCY_SCALE).stats
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for key, stats in results.items():
        print(
            f"  {key:12s} cycles={stats.cycles:>9,} "
            f"warp_act={stats.warp_activity_pct:5.1f}%"
        )
    thread = results["flat_thread"]
    warp = results["flat_warp"]
    dtbl = results["dtbl"]
    # Warp-level expansion beats thread-serial expansion outright...
    assert warp.cycles < thread.cycles
    # ...by balancing work across lanes (higher warp activity than the
    # serial loops achieve).
    assert warp.warp_activity_pct > thread.warp_activity_pct
    # DTBL still clearly beats the thread-serial baseline.
    assert dtbl.cycles < thread.cycles
    # Note: at this scale warp-level expansion outruns even DTBL — it gets
    # 32-way parallelism per frontier vertex with zero launch cost.  This
    # is exactly why the paper's flat BFS already uses it, and why the
    # paper's BFS rows in Fig. 11 show modest (not dramatic) CDP/DTBL
    # gains: dynamic launches only add *variable-size* expansion on top.
