"""Figure 10: memory footprint reduction of DTBL relative to CDP.

Paper shape: DTBL's pending-launch records are far smaller than CDP's
pending-kernel records and drain faster, for an average reduction of
~25.6%; the launch-dense regx_string reduces the most (paper -51.2%).
"""

from repro.harness.experiments import figure10_memory_footprint

from .conftest import show


def test_fig10(grid, benchmark):
    experiment = benchmark.pedantic(
        figure10_memory_footprint, args=(grid,), rounds=1, iterations=1
    )
    show(experiment)

    assert experiment.summary["avg footprint reduction (%)"] > 10.0

    rows = {row[0]: row for row in experiment.rows}
    # Every benchmark with dynamic launches: DTBL peak <= CDP peak.
    for name, (_n, cdp_peak, dtbl_peak, reduction) in rows.items():
        assert dtbl_peak <= cdp_peak, f"{name}: DTBL footprint above CDP"

    # The launch-dense regx benchmarks shrink substantially.
    if "regx_string" in rows:
        assert rows["regx_string"][3] > 20.0
